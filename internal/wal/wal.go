// Package wal implements the durability subsystem: per-node,
// per-table segmented write-ahead logs, durable sstable runs tracked
// by an atomically-rewritten MANIFEST, and a propagation-intent log
// that lets crash recovery re-enqueue view maintenance work that was
// acknowledged but not yet applied.
//
// The paper's prototype inherits all of this from Cassandra's commit
// log and sstables; this package is the stdlib-only substitution. The
// correctness contract is the one the paper leans on: no base Put and
// no propagation intent is acknowledged before it is logged, and
// everything logged survives a crash (modulo the configured fsync
// policy) so views converge after restart instead of staying
// permanently stale.
//
// All storage goes through physical.Backend, so the same WAL code runs
// against the real filesystem (physical/fs), an in-memory store
// (physical/mem), or a fault injector (physical/faulty).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vstore/internal/clock"
	"vstore/internal/metrics"
	"vstore/internal/physical"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every append returns (group commit: one
	// fsync may cover a cohort of concurrent appends).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker; a crash can lose up
	// to one interval of acknowledged writes (Cassandra's "periodic").
	SyncInterval
	// SyncOff never fsyncs during operation (the OS still writes pages
	// back); only Close and explicit Sync calls reach the disk.
	SyncOff
)

// String names the policy for logs and span attributes.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return "unknown"
}

const (
	// DefaultSegmentBytes is the rotation threshold for WAL segments.
	DefaultSegmentBytes = 4 << 20
	// DefaultSyncInterval is the flush cadence under SyncInterval.
	DefaultSyncInterval = 50 * time.Millisecond
	// maxRecordBytes bounds a single record frame; larger lengths in a
	// segment are treated as corruption (or a torn tail).
	maxRecordBytes = 64 << 20
	// frameHeader is u32 payload length + u32 CRC32-C of the payload.
	frameHeader = 8

	segSuffix = ".wal"
)

// Options configures one Log.
type Options struct {
	SegmentBytes int64
	Policy       SyncPolicy
	Interval     time.Duration
	Clock        clock.Clock
	// Metrics receives OpWALAppend / OpWALSync latencies; nil disables.
	Metrics *metrics.LatencySet
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.Interval <= 0 {
		o.Interval = DefaultSyncInterval
	}
	o.Clock = clock.Or(o.Clock)
}

// Log is one segmented append-only log. Records are length-prefixed
// and CRC-checksummed; segments are numbered files that rotate at
// SegmentBytes and are deleted once the state they cover has been
// flushed to a durable sstable run.
type Log struct {
	b    physical.Backend // rooted at the log's directory
	opts Options

	mu   sync.Mutex // serializes appends and rotation
	f    physical.File
	seq  uint64 // active segment number
	size int64  // bytes written to the active segment

	// Group-commit state. A single leader fsyncs at a time; followers
	// whose appended offset is covered by a completed sync return
	// without touching the disk.
	sc struct {
		sync.Mutex
		cond    *sync.Cond
		syncing bool
		seq     uint64 // watermark: segment...
		synced  int64  // ...and offset known durable
	}

	stopTick func() bool
	closed   bool
}

// OpenLog opens the log rooted at backend b (the backend is the log's
// directory — namespace with physical.Sub) and starts a fresh active
// segment after any existing ones. Existing segments are never
// appended to — their tails may be torn — so replay and truncation
// stay segment-granular.
func OpenLog(b physical.Backend, opts Options) (*Log, error) {
	opts.fill()
	segs, err := listSegments(b)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1].seq + 1
	}
	l := &Log{b: b, opts: opts}
	l.sc.cond = sync.NewCond(&l.sc.Mutex)
	if err := l.openSegment(next); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		l.startTicker()
	}
	return l, nil
}

func (l *Log) startTicker() {
	tick := l.opts.Clock.Ticker(l.opts.Interval)
	done := make(chan struct{})
	l.stopTick = func() bool {
		tick.Stop()
		close(done)
		return true
	}
	go func() {
		for {
			select {
			case <-tick.C():
				//lint:ignore sinkerr a failed background group-commit sync is sticky and surfaced by the next policy-driven Sync
				l.Sync()
			case <-done:
				return
			}
		}
	}()
}

func (l *Log) openSegment(seq uint64) error {
	f, err := l.b.Create(segName(seq))
	if err != nil {
		return err
	}
	l.f, l.seq, l.size = f, seq, 0
	return nil
}

func segName(seq uint64) string {
	return fmt.Sprintf("%016x%s", seq, segSuffix)
}

// Append frames and writes one record, rotating the segment when the
// size threshold is crossed, then applies the sync policy. The record
// is durable when Append returns under SyncAlways.
func (l *Log) Append(payload []byte) error {
	start := l.opts.Clock.Now()
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return os.ErrClosed
	}
	if l.f == nil {
		// A previous rotation closed the old segment but failed to open
		// the next one; retry here so one transient storage fault does
		// not wedge the log for good.
		if err := l.reopenLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	if l.size > 0 && l.size+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	f, seq := l.f, l.seq
	if _, err := f.Append(frame); err != nil {
		l.mu.Unlock()
		return err
	}
	l.size += int64(len(frame))
	end := l.size
	l.mu.Unlock()

	l.opts.Metrics.Observe(metrics.OpWALAppend, l.opts.Clock.Now().Sub(start))
	if l.opts.Policy != SyncAlways {
		return nil
	}
	return l.groupSync(f, seq, end)
}

// groupSync makes (seq, end) durable, electing at most one fsync
// leader at a time; followers covered by a completed sync return
// immediately.
func (l *Log) groupSync(f physical.File, seq uint64, end int64) error {
	s := &l.sc
	s.Lock()
	for {
		if s.seq > seq || (s.seq == seq && s.synced >= end) {
			s.Unlock()
			return nil
		}
		if !s.syncing {
			break
		}
		s.cond.Wait()
	}
	s.syncing = true
	s.Unlock()

	start := l.opts.Clock.Now()
	err := f.Sync()
	l.opts.Metrics.Observe(metrics.OpWALSync, l.opts.Clock.Now().Sub(start))

	s.Lock()
	s.syncing = false
	if err == nil && (seq > s.seq || (seq == s.seq && end > s.synced)) {
		s.seq, s.synced = seq, end
	}
	s.cond.Broadcast()
	s.Unlock()
	return err
}

// Sync forces the active segment to disk regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed || l.f == nil {
		// Nothing open (closed, or a failed rotation pending reopen):
		// there are no unsynced appends to cover.
		l.mu.Unlock()
		return nil
	}
	f, seq, end := l.f, l.seq, l.size
	l.mu.Unlock()
	return l.groupSync(f, seq, end)
}

// rotateLocked finishes the active segment (final fsync unless the
// policy is off — interval syncs only cover the active file) and
// starts the next one. Callers hold l.mu.
func (l *Log) rotateLocked() error {
	s := &l.sc
	s.Lock()
	for s.syncing {
		s.cond.Wait()
	}
	s.syncing = true
	s.Unlock()

	old := l.f
	var err error
	if l.opts.Policy != SyncOff {
		err = old.Sync()
	}
	if cerr := old.Close(); err == nil {
		err = cerr
	}
	// The old handle is gone either way, so always move on to a fresh
	// segment: leaving l.f pointing at a closed file would wedge the
	// log forever after one transient fault. If the create fails too,
	// l.f goes nil and the next Append retries it via reopenLocked.
	if oerr := l.openSegment(l.seq + 1); oerr != nil {
		l.f, l.seq, l.size = nil, l.seq+1, 0
		if err == nil {
			err = oerr
		}
	}

	s.Lock()
	s.syncing = false
	if err == nil {
		// The outgoing segment is fully durable; advance the watermark
		// so its waiters (and any pre-rotation cohort) are covered.
		s.seq, s.synced = l.seq, 0
	}
	s.cond.Broadcast()
	s.Unlock()
	return err
}

// reopenLocked restores the active segment after a rotation that
// closed the old file but failed before the new one existed. Callers
// hold l.mu. A backend that managed to create the file before its
// failure surfaces fs.ErrExist here; skipping to the next number keeps
// the log live (replay tolerates the resulting empty segment).
func (l *Log) reopenLocked() error {
	err := l.openSegment(l.seq)
	if err != nil && errors.Is(err, fs.ErrExist) {
		err = l.openSegment(l.seq + 1)
	}
	return err
}

// Rotate manually finishes the active segment and starts a new one.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return os.ErrClosed
	}
	return l.rotateLocked()
}

// SegmentSeq returns the active segment number.
func (l *Log) SegmentSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// DropBefore deletes all segments numbered below seq — the truncation
// step once a flush has made the covered state durable elsewhere.
func (l *Log) DropBefore(seq uint64) (int, error) {
	segs, err := listSegments(l.b)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, s := range segs {
		if s.seq >= seq {
			break
		}
		if err := l.b.Remove(s.name); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// Close finishes the log: stops the interval ticker, fsyncs the active
// segment (clean shutdown is durable even under SyncOff) and closes
// it.
func (l *Log) Close() error {
	return l.close(true)
}

// Abandon closes file handles without the final fsync, modeling a
// crash for the simulator: whatever the policy had synced (plus
// whatever the OS happened to write back) is all recovery gets.
func (l *Log) Abandon() error {
	return l.close(false)
}

func (l *Log) close(sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.stopTick != nil {
		l.stopTick()
	}
	if l.f == nil { // failed rotation left no active segment
		return nil
	}
	var err error
	if sync {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- Replay ----------------------------------------------------------------

// ReplayStats summarizes one ReplayDir pass.
type ReplayStats struct {
	Segments int
	Records  int
	Bytes    int64
	// TornTail reports that the final segment ended in a truncated or
	// corrupt record, which replay drops (the write it framed was never
	// acknowledged under the durability contract).
	TornTail bool
}

// ReplayDir streams every intact record of every segment under b,
// oldest first, into fn. A torn or corrupt tail of the *final* segment
// stops replay cleanly; corruption anywhere else is an error, since
// records after it were acknowledged and would be silently lost. A
// backend with no segments replays zero records.
func ReplayDir(b physical.Backend, fn func(payload []byte) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(b)
	if err != nil {
		return st, err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		data, err := b.ReadFile(seg.name)
		if err != nil {
			return st, err
		}
		st.Segments++
		off := 0
		for off < len(data) {
			rest := data[off:]
			if len(rest) < frameHeader {
				if !last {
					return st, fmt.Errorf("wal: truncated frame in non-final segment %s", seg.name)
				}
				st.TornTail = true
				break
			}
			n := binary.LittleEndian.Uint32(rest)
			want := binary.LittleEndian.Uint32(rest[4:])
			if n > maxRecordBytes || len(rest)-frameHeader < int(n) {
				if !last {
					return st, fmt.Errorf("wal: truncated record in non-final segment %s", seg.name)
				}
				st.TornTail = true
				break
			}
			payload := rest[frameHeader : frameHeader+int(n)]
			if crc32.Checksum(payload, crcTable) != want {
				if !last {
					return st, fmt.Errorf("wal: checksum mismatch in non-final segment %s", seg.name)
				}
				st.TornTail = true
				break
			}
			if err := fn(payload); err != nil {
				return st, err
			}
			st.Records++
			st.Bytes += int64(n)
			off += frameHeader + int(n)
		}
		if st.TornTail {
			break
		}
	}
	return st, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type segment struct {
	name string
	seq  uint64
}

func listSegments(b physical.Backend) ([]segment, error) {
	names, err := b.List("")
	if err != nil {
		return nil, err
	}
	segs := make([]segment, 0, len(names))
	for _, name := range names {
		if strings.HasSuffix(name, "/") || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segment{name: name, seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}
