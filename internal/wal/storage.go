package wal

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"vstore/internal/model"
	"vstore/internal/physical"
	"vstore/internal/sstable"
)

// Storage is one node's durable state, rooted at a physical.Backend:
//
//	MANIFEST.json        atomically-rewritten run registry
//	sst/<run>.sst        immutable sstable runs (sstable.WriteTo)
//	wal/t_<hex>/         per-table mutation log segments
//	wal/intents/         propagation-intent log segments
//
// The MANIFEST is the commit point for flushes and compactions: a run
// file exists durably before the MANIFEST references it, so a crash
// between the two leaves an orphan file that recovery GCs, never a
// referenced-but-missing run.
type Storage struct {
	b    physical.Backend
	opts Options

	mu      sync.Mutex
	man     manifest
	logs    map[string]*Log
	runRefs map[uint64]bool // referenced by the manifest

	intentMu    sync.Mutex
	intents     *Log
	pending     map[uint64]Intent
	nextIntent  uint64
	intentBytes int64 // appended since the last checkpoint

	closed bool
}

// manifest is the durable run registry. FormatVersion guards future
// layout changes; NextRun makes run ids monotonic across restarts.
type manifest struct {
	FormatVersion int                 `json:"format_version"`
	NextRun       uint64              `json:"next_run"`
	Tables        map[string][]uint64 `json:"tables"` // run ids, newest first
}

const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 1
	sstDirName      = "sst"
	walDirName      = "wal"
	intentsDirName  = "intents"
	tableDirPrefix  = "t_"
	runSuffix       = ".sst"
)

// OpenStorage opens a node's storage root on backend b, loads the
// MANIFEST, and deletes orphan sstable files left by a crash between a
// run write and its MANIFEST commit. It does not read run contents or
// WAL records — call Recover for that.
func OpenStorage(b physical.Backend, opts Options) (*Storage, error) {
	opts.fill()
	s := &Storage{
		b:          b,
		opts:       opts,
		logs:       make(map[string]*Log),
		runRefs:    make(map[uint64]bool),
		pending:    make(map[uint64]Intent),
		nextIntent: 1,
	}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	if err := s.gcOrphanRuns(); err != nil {
		return nil, err
	}
	return s, nil
}

// Backend returns the storage root backend (simulator and test use:
// "reopening after a crash" is OpenStorage over the same backend).
func (s *Storage) Backend() physical.Backend { return s.b }

// Policy returns the configured fsync policy.
func (s *Storage) Policy() SyncPolicy { return s.opts.Policy }

func (s *Storage) loadManifest() error {
	s.man = manifest{FormatVersion: manifestVersion, NextRun: 1, Tables: map[string][]uint64{}}
	data, err := s.b.ReadFile(manifestName)
	if physical.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &s.man); err != nil {
		return fmt.Errorf("wal: corrupt manifest: %w", err)
	}
	if s.man.FormatVersion != manifestVersion {
		return fmt.Errorf("wal: manifest format %d not supported", s.man.FormatVersion)
	}
	if s.man.Tables == nil {
		s.man.Tables = map[string][]uint64{}
	}
	for _, runs := range s.man.Tables {
		for _, id := range runs {
			s.runRefs[id] = true
		}
	}
	return nil
}

// commitManifestLocked atomically rewrites the MANIFEST. Callers hold
// s.mu and have already mutated s.man. Atomicity and durability (temp
// file + fsync + rename + directory fsync on the fs backend) are the
// backend's WriteFileAtomic contract.
func (s *Storage) commitManifestLocked() error {
	data, err := json.MarshalIndent(&s.man, "", "  ")
	if err != nil {
		return err
	}
	return s.b.WriteFileAtomic(manifestName, data)
}

// gcOrphanRuns deletes sstable files not referenced by the MANIFEST —
// the residue of a crash after a run write but before its commit, or
// after a commit that replaced runs but before their deletion.
func (s *Storage) gcOrphanRuns() error {
	names, err := s.b.List(sstDirName)
	if err != nil {
		return err
	}
	for _, name := range names {
		if strings.HasSuffix(name, "/") {
			continue
		}
		id, ok := parseRunName(name)
		if !ok || s.runRefs[id] {
			// Unparseable names include in-flight temp files from
			// WriteFileAtomic; stale ones are harmless and rewritten
			// paths never collide, so only remove what we can attribute
			// to a crashed flush.
			if !ok && strings.Contains(name, ".tmp") {
				//lint:ignore sinkerr best-effort temp cleanup; a leftover temp file is harmless
				s.b.Remove(sstDirName + "/" + name)
			}
			continue
		}
		if err := s.b.Remove(sstDirName + "/" + name); err != nil {
			return err
		}
	}
	return nil
}

func parseRunName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, runSuffix) {
		return 0, false
	}
	id, err := strconv.ParseUint(strings.TrimSuffix(name, runSuffix), 16, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

func (s *Storage) runName(id uint64) string {
	return fmt.Sprintf("%s/%016x%s", sstDirName, id, runSuffix)
}

func tableDirName(table string) string {
	return tableDirPrefix + hex.EncodeToString([]byte(table))
}

func tableFromDirName(name string) (string, bool) {
	if !strings.HasPrefix(name, tableDirPrefix) {
		return "", false
	}
	b, err := hex.DecodeString(strings.TrimPrefix(name, tableDirPrefix))
	if err != nil {
		return "", false
	}
	return string(b), true
}

// tableWAL returns the backend namespaced to one table's log dir.
func (s *Storage) tableWAL(table string) physical.Backend {
	return physical.Sub(s.b, walDirName+"/"+tableDirName(table))
}

// tableLog lazily opens the mutation log for a table.
func (s *Storage) tableLog(table string) (*Log, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.logs[table]; ok {
		return l, nil
	}
	if s.closed {
		return nil, os.ErrClosed
	}
	l, err := OpenLog(s.tableWAL(table), s.opts)
	if err != nil {
		return nil, err
	}
	s.logs[table] = l
	return l, nil
}

func (s *Storage) intentLog() (*Log, error) {
	// Callers hold intentMu.
	if s.intents != nil {
		return s.intents, nil
	}
	if s.closed {
		return nil, os.ErrClosed
	}
	l, err := OpenLog(physical.Sub(s.b, walDirName+"/"+intentsDirName), s.opts)
	if err != nil {
		return nil, err
	}
	s.intents = l
	return l, nil
}

// --- Recovery --------------------------------------------------------------

// RecoveredTable is one table's durable state: its live runs (newest
// first, mirroring the LSM's order) and the WAL tail not yet covered
// by any run.
type RecoveredTable struct {
	Runs []RecoveredRun
	Tail []model.Entry
}

// RecoveredRun pairs a run with its manifest id so the LSM can hand
// the id back when the run is later compacted away.
type RecoveredRun struct {
	ID    uint64
	Table *sstable.Table
}

// RecoveryStats summarizes what a Recover pass restored.
type RecoveryStats struct {
	Tables           int   `json:"tables"`
	Runs             int   `json:"runs"`
	SegmentsReplayed int   `json:"segments_replayed"`
	RecordsReplayed  int   `json:"records_replayed"`
	TornTails        int   `json:"torn_tails"`
	IntentsPending   int   `json:"intents_pending"`
	IntentRecords    int   `json:"intent_records"`
	BytesReplayed    int64 `json:"bytes_replayed"`
}

// Add accumulates per-node stats into a cluster-wide total.
func (r *RecoveryStats) Add(o RecoveryStats) {
	r.Tables += o.Tables
	r.Runs += o.Runs
	r.SegmentsReplayed += o.SegmentsReplayed
	r.RecordsReplayed += o.RecordsReplayed
	r.TornTails += o.TornTails
	r.IntentsPending += o.IntentsPending
	r.IntentRecords += o.IntentRecords
	r.BytesReplayed += o.BytesReplayed
}

// Recovery is the full result of a Recover pass.
type Recovery struct {
	Tables  map[string]RecoveredTable
	Intents []Intent // pending (started, never done), in log order
	Stats   RecoveryStats
}

// Recover rebuilds the node's durable state: loads every manifest run,
// replays each table's WAL tail, and reconstructs the set of pending
// propagation intents (start without done). It must be called before
// new writes; the intent log's id counter and pending set are seeded
// here.
func (s *Storage) Recover() (*Recovery, error) {
	rec := &Recovery{Tables: map[string]RecoveredTable{}}

	s.mu.Lock()
	tables := make(map[string][]uint64, len(s.man.Tables))
	for t, runs := range s.man.Tables {
		tables[t] = append([]uint64(nil), runs...)
	}
	s.mu.Unlock()

	// Tables with WAL directories but no flushed runs yet.
	walEnts, err := s.b.List(walDirName)
	if err != nil {
		return nil, err
	}
	for _, name := range walEnts {
		if !strings.HasSuffix(name, "/") {
			continue
		}
		if t, ok := tableFromDirName(strings.TrimSuffix(name, "/")); ok {
			if _, seen := tables[t]; !seen {
				tables[t] = nil
			}
		}
	}

	for table, runIDs := range tables {
		var rt RecoveredTable
		for _, id := range runIDs {
			tbl, err := sstable.ReadFrom(s.b, s.runName(id))
			if err != nil {
				return nil, fmt.Errorf("wal: run %016x of %q: %w", id, table, err)
			}
			rt.Runs = append(rt.Runs, RecoveredRun{ID: id, Table: tbl})
			rec.Stats.Runs++
		}
		st, err := ReplayDir(s.tableWAL(table), func(p []byte) error {
			typ, body, err := recordType(p)
			if err != nil {
				return err
			}
			if typ != recMutation {
				return fmt.Errorf("%w: record type %d in mutation log", ErrBadRecord, typ)
			}
			e, err := decodeMutation(body)
			if err != nil {
				return err
			}
			rt.Tail = append(rt.Tail, e)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("wal: replay %q: %w", table, err)
		}
		rec.Stats.SegmentsReplayed += st.Segments
		rec.Stats.RecordsReplayed += st.Records
		rec.Stats.BytesReplayed += st.Bytes
		if st.TornTail {
			rec.Stats.TornTails++
		}
		rec.Tables[table] = rt
		rec.Stats.Tables++
	}

	// Intent log: pending = started minus done, preserving log order.
	s.intentMu.Lock()
	defer s.intentMu.Unlock()
	var order []uint64
	st, err := ReplayDir(physical.Sub(s.b, walDirName+"/"+intentsDirName), func(p []byte) error {
		typ, body, err := recordType(p)
		if err != nil {
			return err
		}
		switch typ {
		case recIntentStart:
			it, err := decodeIntentStart(body)
			if err != nil {
				return err
			}
			if it.ID >= s.nextIntent {
				s.nextIntent = it.ID + 1
			}
			if _, dup := s.pending[it.ID]; !dup {
				order = append(order, it.ID)
			}
			s.pending[it.ID] = it
		case recIntentDone:
			id, err := decodeIntentDone(body)
			if err != nil {
				return err
			}
			if id >= s.nextIntent {
				s.nextIntent = id + 1
			}
			delete(s.pending, id)
		default:
			return fmt.Errorf("%w: record type %d in intent log", ErrBadRecord, typ)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("wal: replay intents: %w", err)
	}
	rec.Stats.IntentRecords = st.Records
	if st.TornTail {
		rec.Stats.TornTails++
	}
	for _, id := range order {
		if it, ok := s.pending[id]; ok {
			rec.Intents = append(rec.Intents, it)
		}
	}
	rec.Stats.IntentsPending = len(rec.Intents)
	return rec, nil
}

// --- Per-table persistence (the lsm.Persist contract) ----------------------

// TableStorage adapts one table's slice of the Storage to the LSM's
// persistence hooks.
type TableStorage struct {
	s     *Storage
	table string
}

// Table returns the persistence handle for one table.
func (s *Storage) Table(table string) *TableStorage {
	return &TableStorage{s: s, table: table}
}

// AppendMutation logs one cell write ahead of its memtable apply.
func (t *TableStorage) AppendMutation(key []byte, c model.Cell) error {
	l, err := t.s.tableLog(t.table)
	if err != nil {
		return err
	}
	return l.Append(encodeMutation(key, c))
}

// FlushRun makes a memtable flush durable: write the run file, commit
// it to the MANIFEST, then truncate the table's WAL — everything the
// log covered is now in the run. Returns the new run's id.
func (t *TableStorage) FlushRun(tbl *sstable.Table) (uint64, error) {
	id, err := t.s.writeRun(tbl)
	if err != nil {
		return 0, err
	}
	s := t.s
	s.mu.Lock()
	s.man.Tables[t.table] = append([]uint64{id}, s.man.Tables[t.table]...)
	s.runRefs[id] = true
	err = s.commitManifestLocked()
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	// Truncation: appends are blocked by the LSM's store lock for the
	// duration of the flush, so rotating and dropping everything below
	// the new active segment cannot lose records.
	l, err := t.s.tableLog(t.table)
	if err != nil {
		return id, err
	}
	if err := l.Rotate(); err != nil {
		return id, err
	}
	if _, err := l.DropBefore(l.SegmentSeq()); err != nil {
		return id, err
	}
	return id, nil
}

// ReplaceRuns makes a compaction durable: write the merged run, commit
// a MANIFEST where it replaces the inputs, then delete the input
// files. A crash between commit and deletion leaves orphans for the
// next open's GC.
func (t *TableStorage) ReplaceRuns(old []uint64, merged *sstable.Table) (uint64, error) {
	id, err := t.s.writeRun(merged)
	if err != nil {
		return 0, err
	}
	drop := make(map[uint64]bool, len(old))
	for _, o := range old {
		drop[o] = true
	}
	s := t.s
	s.mu.Lock()
	kept := []uint64{id}
	for _, r := range s.man.Tables[t.table] {
		if !drop[r] {
			kept = append(kept, r)
		}
	}
	s.man.Tables[t.table] = kept
	s.runRefs[id] = true
	for _, o := range old {
		delete(s.runRefs, o)
	}
	err = s.commitManifestLocked()
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	for _, o := range old {
		//lint:ignore sinkerr the manifest no longer references these runs; orphan GC covers leftovers
		s.b.Remove(s.runName(o))
	}
	return id, nil
}

func (s *Storage) writeRun(tbl *sstable.Table) (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, os.ErrClosed
	}
	id := s.man.NextRun
	s.man.NextRun++
	s.mu.Unlock()
	if err := sstable.WriteTo(s.b, s.runName(id), tbl); err != nil {
		return 0, err
	}
	return id, nil
}

// DropTable removes every durable trace of one table: its manifest
// entry (the commit point — committed first, so a crash at any later
// step leaves only orphan run files and dead WAL segments), then its
// run files and mutation-log segments. The caller is responsible for
// redoing an interrupted drop (vstore records pending drops in its
// schema file); redoing a completed one is a no-op.
func (s *Storage) DropTable(table string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return os.ErrClosed
	}
	runs := append([]uint64(nil), s.man.Tables[table]...)
	if _, ok := s.man.Tables[table]; ok {
		delete(s.man.Tables, table)
		if err := s.commitManifestLocked(); err != nil {
			// Still referenced; nothing was lost.
			s.man.Tables[table] = runs
			s.mu.Unlock()
			return err
		}
		for _, id := range runs {
			delete(s.runRefs, id)
		}
	}
	l := s.logs[table]
	delete(s.logs, table)
	s.mu.Unlock()
	if l != nil {
		//lint:ignore sinkerr the log's segments are removed below; a failed close cannot resurrect them
		l.Abandon()
	}
	for _, id := range runs {
		//lint:ignore sinkerr unreferenced runs are orphans; the next open's GC reaps leftovers
		s.b.Remove(s.runName(id))
	}
	dir := walDirName + "/" + tableDirName(table)
	names, err := s.b.List(dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if strings.HasSuffix(name, "/") {
			continue
		}
		if err := s.b.Remove(dir + "/" + name); err != nil && !physical.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// --- Intents ---------------------------------------------------------------

// NextIntentID allocates a monotonically increasing intent id.
func (s *Storage) NextIntentID() uint64 {
	s.intentMu.Lock()
	defer s.intentMu.Unlock()
	id := s.nextIntent
	s.nextIntent++
	return id
}

// LogIntentStart makes a propagation intent durable before the Put it
// belongs to is acknowledged.
func (s *Storage) LogIntentStart(it Intent) error {
	s.intentMu.Lock()
	defer s.intentMu.Unlock()
	l, err := s.intentLog()
	if err != nil {
		return err
	}
	p := encodeIntentStart(it)
	if err := l.Append(p); err != nil {
		return err
	}
	s.pending[it.ID] = it
	s.intentBytes += int64(len(p))
	return nil
}

// LogIntentDone marks an intent's propagation complete. When the log
// has grown past the segment threshold it is checkpointed: still-
// pending intents are re-logged into a fresh segment and old segments
// are dropped, bounding replay work to the pending set.
func (s *Storage) LogIntentDone(id uint64) error {
	s.intentMu.Lock()
	defer s.intentMu.Unlock()
	l, err := s.intentLog()
	if err != nil {
		return err
	}
	if err := l.Append(encodeIntentDone(id)); err != nil {
		return err
	}
	delete(s.pending, id)
	s.intentBytes += 16
	if s.intentBytes >= s.opts.SegmentBytes {
		return s.checkpointIntentsLocked(l)
	}
	return nil
}

// PendingIntents returns the ids currently started but not done
// (diagnostics and tests).
func (s *Storage) PendingIntents() []uint64 {
	s.intentMu.Lock()
	defer s.intentMu.Unlock()
	ids := make([]uint64, 0, len(s.pending))
	for id := range s.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// checkpointIntentsLocked compacts the intent log. Order matters for
// crash safety: rotate first (old segments intact), re-log pending
// starts into the new segment, sync, and only then drop old segments.
// A crash at any point leaves either the old segments (full history)
// or the new checkpoint (pending set), never neither; replay dedupes
// repeated starts by id.
func (s *Storage) checkpointIntentsLocked(l *Log) error {
	if err := l.Rotate(); err != nil {
		return err
	}
	keep := l.SegmentSeq()
	s.intentBytes = 0
	// Re-log in id order: recovery returns pending intents in log
	// order, and replaying them must be deterministic (the simulator's
	// traces depend on it).
	ids := make([]uint64, 0, len(s.pending))
	for id := range s.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := encodeIntentStart(s.pending[id])
		if err := l.Append(p); err != nil {
			return err
		}
		s.intentBytes += int64(len(p))
	}
	if err := l.Sync(); err != nil {
		return err
	}
	_, err := l.DropBefore(keep)
	return err
}

// --- Lifecycle -------------------------------------------------------------

// Sync forces every open log to disk — the clean-shutdown barrier.
func (s *Storage) Sync() error {
	s.mu.Lock()
	logs := make([]*Log, 0, len(s.logs)+1)
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.Unlock()
	s.intentMu.Lock()
	if s.intents != nil {
		logs = append(logs, s.intents)
	}
	s.intentMu.Unlock()
	var first error
	for _, l := range logs {
		if err := l.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close syncs and closes every log. Safe to call twice.
func (s *Storage) Close() error { return s.closeLogs(true) }

// Abandon closes every log without syncing, modeling a crash: only
// policy-synced (and OS-written) bytes survive for the next Open.
func (s *Storage) Abandon() error { return s.closeLogs(false) }

func (s *Storage) closeLogs(sync bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	logs := make([]*Log, 0, len(s.logs)+1)
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.Unlock()
	s.intentMu.Lock()
	if s.intents != nil {
		logs = append(logs, s.intents)
	}
	s.intentMu.Unlock()
	var first error
	for _, l := range logs {
		var err error
		if sync {
			err = l.Close()
		} else {
			err = l.Abandon()
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}
