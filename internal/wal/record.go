package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vstore/internal/dvv"
	"vstore/internal/model"
)

// Record types. The first payload byte tags the record; everything
// after is type-specific, uvarint-framed fields.
const (
	// recMutation logs one applied cell: uvarint keyLen + key, cell.
	// The table is implicit — mutation logs are per-table directories.
	recMutation byte = 1
	// recIntentStart logs an acknowledged Put whose view propagation
	// has been enqueued but not yet completed: uvarint id, table, row,
	// uvarint updateCount + (column, cell) pairs.
	recIntentStart byte = 2
	// recIntentDone marks an intent's propagation complete: uvarint id.
	recIntentDone byte = 3
)

// ErrBadRecord reports a structurally invalid record payload — frame
// CRCs passed, so this is a logic-level corruption, not a torn write.
var ErrBadRecord = errors.New("wal: malformed record")

// Intent is one logged propagation intent: the base-table Put whose
// derived view updates must eventually be applied. Recovery re-runs
// Algorithm 2 for every intent with a start but no done record; the
// propagation machinery is idempotent (LWW cells carry the base
// write's timestamps), so double replay converges to the same state.
type Intent struct {
	ID      uint64
	Table   string
	Row     string
	Updates []model.ColumnUpdate
}

// Cell flag bits. Bit 0 marks a tombstone. Bit 1 (cellHasMeta) marks
// that dot metadata (dvv.AppendMeta encoding) follows the value —
// records written before dots existed carry flag 0/1 and decode
// unchanged, so old logs stay readable.
const (
	cellTombstone byte = 1 << 0
	cellHasMeta   byte = 1 << 1
)

func appendCell(buf []byte, c model.Cell) []byte {
	buf = binary.AppendVarint(buf, c.TS)
	var flag byte
	if c.Tombstone {
		flag |= cellTombstone
	}
	hasMeta := !c.Dot.IsZero() || len(c.Ctx) > 0
	if hasMeta {
		flag |= cellHasMeta
	}
	buf = append(buf, flag)
	buf = binary.AppendUvarint(buf, uint64(len(c.Value)))
	buf = append(buf, c.Value...)
	if hasMeta {
		buf = dvv.AppendMeta(buf, c.Dot, c.Ctx)
	}
	return buf
}

func readCell(data []byte) (model.Cell, []byte, error) {
	ts, sz := binary.Varint(data)
	if sz <= 0 || len(data) == sz {
		return model.Cell{}, nil, ErrBadRecord
	}
	flag := data[sz]
	data = data[sz+1:]
	vl, sz := binary.Uvarint(data)
	if sz <= 0 || uint64(len(data)-sz) < vl {
		return model.Cell{}, nil, ErrBadRecord
	}
	var val []byte
	if vl > 0 {
		val = append([]byte(nil), data[sz:sz+int(vl)]...)
	}
	c := model.Cell{Value: val, TS: ts, Tombstone: flag&cellTombstone != 0}
	data = data[sz+int(vl):]
	if flag&cellHasMeta != 0 {
		var err error
		c.Dot, c.Ctx, data, err = dvv.ReadMeta(data)
		if err != nil {
			return model.Cell{}, nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
		}
	}
	return c, data, nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readBytes(data []byte) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 || uint64(len(data)-sz) < n {
		return nil, nil, ErrBadRecord
	}
	return data[sz : sz+int(n)], data[sz+int(n):], nil
}

func encodeMutation(key []byte, c model.Cell) []byte {
	buf := make([]byte, 0, len(key)+len(c.Value)+24)
	buf = append(buf, recMutation)
	buf = appendBytes(buf, key)
	return appendCell(buf, c)
}

func decodeMutation(p []byte) (model.Entry, error) {
	key, rest, err := readBytes(p)
	if err != nil {
		return model.Entry{}, err
	}
	c, rest, err := readCell(rest)
	if err != nil {
		return model.Entry{}, err
	}
	if len(rest) != 0 {
		return model.Entry{}, ErrBadRecord
	}
	return model.Entry{Key: append([]byte(nil), key...), Cell: c}, nil
}

func encodeIntentStart(it Intent) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, recIntentStart)
	buf = binary.AppendUvarint(buf, it.ID)
	buf = appendBytes(buf, []byte(it.Table))
	buf = appendBytes(buf, []byte(it.Row))
	buf = binary.AppendUvarint(buf, uint64(len(it.Updates)))
	for _, u := range it.Updates {
		buf = appendBytes(buf, []byte(u.Column))
		buf = appendCell(buf, u.Cell)
	}
	return buf
}

func decodeIntentStart(p []byte) (Intent, error) {
	var it Intent
	id, sz := binary.Uvarint(p)
	if sz <= 0 {
		return it, ErrBadRecord
	}
	it.ID = id
	table, rest, err := readBytes(p[sz:])
	if err != nil {
		return it, err
	}
	it.Table = string(table)
	row, rest, err := readBytes(rest)
	if err != nil {
		return it, err
	}
	it.Row = string(row)
	n, sz := binary.Uvarint(rest)
	if sz <= 0 {
		return it, ErrBadRecord
	}
	rest = rest[sz:]
	// Each update costs several bytes; a count beyond the remaining
	// payload is corrupt — reject before it sizes an allocation.
	if n > uint64(len(rest)) {
		return it, ErrBadRecord
	}
	it.Updates = make([]model.ColumnUpdate, 0, n)
	for i := uint64(0); i < n; i++ {
		col, r, err := readBytes(rest)
		if err != nil {
			return it, err
		}
		cell, r, err := readCell(r)
		if err != nil {
			return it, err
		}
		rest = r
		it.Updates = append(it.Updates, model.ColumnUpdate{Column: string(col), Cell: cell})
	}
	if len(rest) != 0 {
		return it, ErrBadRecord
	}
	return it, nil
}

func encodeIntentDone(id uint64) []byte {
	buf := make([]byte, 0, 10)
	buf = append(buf, recIntentDone)
	return binary.AppendUvarint(buf, id)
}

func decodeIntentDone(p []byte) (uint64, error) {
	id, sz := binary.Uvarint(p)
	if sz <= 0 || len(p) != sz {
		return 0, ErrBadRecord
	}
	return id, nil
}

func recordType(p []byte) (byte, []byte, error) {
	if len(p) == 0 {
		return 0, nil, ErrBadRecord
	}
	switch p[0] {
	case recMutation, recIntentStart, recIntentDone:
		return p[0], p[1:], nil
	}
	return 0, nil, fmt.Errorf("%w: unknown type %d", ErrBadRecord, p[0])
}
