package wal

import (
	"errors"
	"testing"

	"vstore/internal/physical"
	physmem "vstore/internal/physical/mem"
)

// flakyBackend arms one-shot failures on segment creation or fsync,
// the two operations a rotation performs after it has already closed
// the outgoing segment. The faulty package can't target these
// precisely (its schedule is probabilistic), and the regression here
// needs the exact interleaving: fail *inside* rotateLocked, then
// prove the log keeps accepting appends once the fault clears.
type flakyBackend struct {
	physical.Backend
	failCreate bool
	failSync   bool
}

func (fb *flakyBackend) Create(name string) (physical.File, error) {
	if fb.failCreate {
		return nil, errors.New("injected: create " + name)
	}
	f, err := fb.Backend.Create(name)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: f, b: fb}, nil
}

type flakyFile struct {
	physical.File
	b *flakyBackend
}

func (f *flakyFile) Sync() error {
	if f.b.failSync {
		return errors.New("injected: sync")
	}
	return f.File.Sync()
}

// fillSegment appends records until the next small append would cross
// the segment threshold, returning everything acked so far.
func fillSegment(t *testing.T, l *Log, tag string) [][]byte {
	t.Helper()
	var acked [][]byte
	rec := make([]byte, 100)
	copy(rec, tag)
	for i := 0; i < 9; i++ { // 9 * (100+8) < 1024 < 10 * 108
		if err := l.Append(rec); err != nil {
			t.Fatalf("fill append: %v", err)
		}
		acked = append(acked, append([]byte(nil), rec...))
	}
	return acked
}

// TestRotationCreateFailureDoesNotWedgeLog is the regression for a
// livelock the sim's storage-fault schedule exposed: rotateLocked
// closed the old segment, failed to create the next one, and left l.f
// pointing at the closed file — every later Append then failed with a
// real (non-injected) error forever, long after the fault had cleared.
// Seen as seed-5 "propagation stuck after 2001 attempts" and seed-7
// post-heal anti-entropy divergence in mvverify -storage-faults runs.
func TestRotationCreateFailureDoesNotWedgeLog(t *testing.T) {
	fb := &flakyBackend{Backend: physmem.New()}
	l, err := OpenLog(fb, Options{Policy: SyncAlways, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	acked := fillSegment(t, l, "seg1")

	fb.failCreate = true
	if err := l.Append(make([]byte, 100)); err == nil {
		t.Fatal("append across failed rotation: want error")
	}
	fb.failCreate = false

	// One transient fault must not wedge the log: the next append
	// reopens a fresh segment and succeeds.
	rec := []byte("after-fault")
	if err := l.Append(rec); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	acked = append(acked, rec)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	if _, err := ReplayDir(fb, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(acked) {
		t.Fatalf("replayed %d records, want %d", len(got), len(acked))
	}
	if string(got[len(got)-1]) != "after-fault" {
		t.Fatalf("last record = %q", got[len(got)-1])
	}
}

// TestRotationSyncFailureDoesNotWedgeLog covers the sibling arm: the
// outgoing segment's final fsync fails. The rotation must still open
// the next segment (the old handle is closed either way) so the log
// stays live once the fault clears.
func TestRotationSyncFailureDoesNotWedgeLog(t *testing.T) {
	fb := &flakyBackend{Backend: physmem.New()}
	l, err := OpenLog(fb, Options{Policy: SyncAlways, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	acked := fillSegment(t, l, "seg1")

	fb.failSync = true
	if err := l.Append(make([]byte, 100)); err == nil {
		t.Fatal("append across failed rotation sync: want error")
	}
	fb.failSync = false

	rec := []byte("after-fault")
	if err := l.Append(rec); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	acked = append(acked, rec)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	if _, err := ReplayDir(fb, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(acked) {
		t.Fatalf("replayed %d records, want %d", len(got), len(acked))
	}
}
