package wal

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"vstore/internal/model"
	"vstore/internal/physical"
	"vstore/internal/sstable"
)

func mkEntries(n int, ts int64) []model.Entry {
	es := make([]model.Entry, 0, n)
	for i := 0; i < n; i++ {
		es = append(es, model.Entry{
			Key:  []byte(fmt.Sprintf("row-%03d/col", i)),
			Cell: model.Cell{Value: []byte(fmt.Sprintf("v%d", i)), TS: ts},
		})
	}
	return es
}

func openStorage(t *testing.T, b physical.Backend) *Storage {
	t.Helper()
	s, err := OpenStorage(b, Options{Policy: SyncAlways, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("open storage: %v", err)
	}
	return s
}

// exists reports whether name is readable on the backend.
func exists(t *testing.T, b physical.Backend, name string) bool {
	t.Helper()
	_, err := b.ReadFile(name)
	if err == nil {
		return true
	}
	if !physical.IsNotExist(err) {
		t.Fatalf("reading %s: %v", name, err)
	}
	return false
}

// TestStorageFlushRecoverRoundtrip is the basic durability cycle: log
// mutations, flush a run (which truncates the WAL), log more mutations,
// crash, recover — the run plus the post-flush WAL tail must come back.
func TestStorageFlushRecoverRoundtrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b physical.Backend) {
		s := openStorage(t, b)
		ts := s.Table("base")

		flushed := mkEntries(4, 10)
		for _, e := range flushed {
			if err := ts.AppendMutation(e.Key, e.Cell); err != nil {
				t.Fatal(err)
			}
		}
		runID, err := ts.FlushRun(sstable.Build(flushed))
		if err != nil {
			t.Fatal(err)
		}

		// FlushRun truncates: only the fresh active segment remains.
		segs, err := listSegments(s.tableWAL("base"))
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != 1 {
			t.Fatalf("WAL not truncated after flush: %d segments", len(segs))
		}

		tail := model.Entry{Key: []byte("row-zzz/col"), Cell: model.Cell{Value: []byte("after-flush"), TS: 20}}
		if err := ts.AppendMutation(tail.Key, tail.Cell); err != nil {
			t.Fatal(err)
		}
		if err := s.Abandon(); err != nil { // crash
			t.Fatal(err)
		}

		s2 := openStorage(t, b)
		rec, err := s2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		rt, ok := rec.Tables["base"]
		if !ok {
			t.Fatalf("table not recovered; got %v", rec.Tables)
		}
		if len(rt.Runs) != 1 || rt.Runs[0].ID != runID {
			t.Fatalf("runs: %+v, want one with id %d", rt.Runs, runID)
		}
		if got := rt.Runs[0].Table.Entries(); !reflect.DeepEqual(got, flushed) {
			t.Fatalf("run entries mismatch:\n got %v\nwant %v", got, flushed)
		}
		if len(rt.Tail) != 1 || !bytes.Equal(rt.Tail[0].Key, tail.Key) || !bytes.Equal(rt.Tail[0].Cell.Value, tail.Cell.Value) {
			t.Fatalf("WAL tail mismatch: %+v", rt.Tail)
		}
		if rec.Stats.Runs != 1 || rec.Stats.RecordsReplayed != 1 {
			t.Fatalf("stats: %+v", rec.Stats)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStorageOrphanRunGC models a crash between writing a run file and
// committing the MANIFEST that references it: the orphan must be
// ignored and deleted on the next open, while referenced runs survive.
func TestStorageOrphanRunGC(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b physical.Backend) {
		s := openStorage(t, b)
		ts := s.Table("base")

		flushed := mkEntries(2, 5)
		for _, e := range flushed {
			if err := ts.AppendMutation(e.Key, e.Cell); err != nil {
				t.Fatal(err)
			}
		}
		keptID, err := ts.FlushRun(sstable.Build(flushed))
		if err != nil {
			t.Fatal(err)
		}

		// The crashed flush: a durable run file the MANIFEST never saw.
		orphan := s.runName(keptID + 7)
		if err := sstable.WriteTo(b, orphan, sstable.Build(mkEntries(3, 99))); err != nil {
			t.Fatal(err)
		}
		// Plus a leftover temp file from an interrupted atomic write.
		tmp := sstDirName + "/0000000000000009.sst.tmp123"
		rewrite(t, b, tmp, []byte("partial"))
		if err := s.Abandon(); err != nil {
			t.Fatal(err)
		}

		s2 := openStorage(t, b)
		if exists(t, b, orphan) {
			t.Fatal("orphan run not GCd")
		}
		if exists(t, b, tmp) {
			t.Fatal("temp file not GCd")
		}
		if !exists(t, b, s2.runName(keptID)) {
			t.Fatal("referenced run was deleted")
		}
		rec, err := s2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if got := rec.Tables["base"].Runs; len(got) != 1 || got[0].ID != keptID {
			t.Fatalf("recovery after GC: %+v", got)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStorageCompactionReplace: ReplaceRuns swaps input runs for the
// merged one atomically at the MANIFEST, and recovery sees only the
// merged run.
func TestStorageCompactionReplace(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b physical.Backend) {
		s := openStorage(t, b)
		ts := s.Table("base")

		r1, err := ts.FlushRun(sstable.Build(mkEntries(2, 1)))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ts.FlushRun(sstable.Build(mkEntries(2, 2)))
		if err != nil {
			t.Fatal(err)
		}
		merged := sstable.Build(mkEntries(2, 2))
		mid, err := ts.ReplaceRuns([]uint64{r1, r2}, merged)
		if err != nil {
			t.Fatal(err)
		}
		for _, old := range []uint64{r1, r2} {
			if exists(t, b, s.runName(old)) {
				t.Fatalf("input run %d survived compaction", old)
			}
		}
		if err := s.Abandon(); err != nil {
			t.Fatal(err)
		}

		s2 := openStorage(t, b)
		rec, err := s2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		runs := rec.Tables["base"].Runs
		if len(runs) != 1 || runs[0].ID != mid {
			t.Fatalf("want only merged run %d, got %+v", mid, runs)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func intent(id uint64, row string) Intent {
	return Intent{
		ID: id, Table: "base", Row: row,
		Updates: []model.ColumnUpdate{{Column: "c", Cell: model.Cell{Value: []byte(row), TS: int64(id)}}},
	}
}

// TestStorageIntentRecovery: pending = started minus done, in log
// order, with the id counter seeded past everything seen — and marking
// an intent done twice (the double-replay case) is harmless.
func TestStorageIntentRecovery(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b physical.Backend) {
		s := openStorage(t, b)
		for id := uint64(1); id <= 3; id++ {
			got := s.NextIntentID()
			if got != id {
				t.Fatalf("NextIntentID = %d, want %d", got, id)
			}
			if err := s.LogIntentStart(intent(id, fmt.Sprintf("row-%d", id))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.LogIntentDone(2); err != nil {
			t.Fatal(err)
		}
		if err := s.LogIntentDone(2); err != nil { // double completion: no-op
			t.Fatal(err)
		}
		if err := s.Abandon(); err != nil {
			t.Fatal(err)
		}

		s2 := openStorage(t, b)
		rec, err := s2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Intents) != 2 || rec.Intents[0].ID != 1 || rec.Intents[1].ID != 3 {
			t.Fatalf("pending intents: %+v", rec.Intents)
		}
		if got := rec.Intents[0]; got.Table != "base" || got.Row != "row-1" ||
			len(got.Updates) != 1 || got.Updates[0].Column != "c" {
			t.Fatalf("intent payload mangled: %+v", got)
		}
		if next := s2.NextIntentID(); next != 4 {
			t.Fatalf("id counter not seeded: %d, want 4", next)
		}

		// Recovery completes intent 1 — twice, as a crashed-again restart
		// would — then crashes. The third open must see only intent 3.
		if err := s2.LogIntentDone(1); err != nil {
			t.Fatal(err)
		}
		if err := s2.LogIntentDone(1); err != nil {
			t.Fatal(err)
		}
		if err := s2.Abandon(); err != nil {
			t.Fatal(err)
		}
		s3 := openStorage(t, b)
		rec, err = s3.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Intents) != 1 || rec.Intents[0].ID != 3 {
			t.Fatalf("after double-done replay: %+v", rec.Intents)
		}
		if err := s3.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStorageIntentCheckpoint: a long start/done churn must checkpoint
// the intent log (bounding replay to the pending set) without losing
// the intents that were still open when the churn stopped.
func TestStorageIntentCheckpoint(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b physical.Backend) {
		s, err := OpenStorage(b, Options{Policy: SyncAlways, SegmentBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		// Two intents stay pending the whole time.
		for _, id := range []uint64{s.NextIntentID(), s.NextIntentID()} {
			if err := s.LogIntentStart(intent(id, fmt.Sprintf("sticky-%d", id))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 100; i++ {
			id := s.NextIntentID()
			if err := s.LogIntentStart(intent(id, "churn")); err != nil {
				t.Fatal(err)
			}
			if err := s.LogIntentDone(id); err != nil {
				t.Fatal(err)
			}
		}
		// Checkpointing must have dropped old segments: everything still on
		// disk replays in well under the churn's record count.
		intents := physical.Sub(b, walDirName+"/"+intentsDirName)
		records := 0
		if _, err := ReplayDir(intents, func([]byte) error { records++; return nil }); err != nil {
			t.Fatal(err)
		}
		if records >= 200 {
			t.Fatalf("intent log never checkpointed: %d records on disk", records)
		}
		if err := s.Abandon(); err != nil {
			t.Fatal(err)
		}

		s2, err := OpenStorage(b, Options{Policy: SyncAlways, SegmentBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := s2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Intents) != 2 || rec.Intents[0].ID != 1 || rec.Intents[1].ID != 2 {
			t.Fatalf("sticky intents lost across checkpoints: %+v", rec.Intents)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStorageFreshDirRecover: recovering an empty root is a clean
// no-op, and the manifest survives a reopen with nothing flushed.
func TestStorageFreshDirRecover(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b physical.Backend) {
		s := openStorage(t, b)
		rec, err := s.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Tables) != 0 || len(rec.Intents) != 0 {
			t.Fatalf("fresh dir recovered state: %+v", rec)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
