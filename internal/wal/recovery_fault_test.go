package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"vstore/internal/model"
	"vstore/internal/physical"
	"vstore/internal/physical/faulty"
	physfs "vstore/internal/physical/fs"
	physmem "vstore/internal/physical/mem"
	"vstore/internal/sstable"
)

// driveRecoveryWorkload runs one fixed storage workload: mutations on
// two tables, a flush (WAL truncation + run), a compaction
// (ReplaceRuns), intent churn past a checkpoint, and a torn set of
// pending intents — the PR-4 recovery surface in one sequence.
func driveRecoveryWorkload(t *testing.T, s *Storage) {
	t.Helper()
	ta, tb := s.Table("alpha"), s.Table("beta")

	for i := 0; i < 8; i++ {
		e := model.Entry{Key: []byte(fmt.Sprintf("a-%02d/c", i)), Cell: model.Cell{Value: []byte(fmt.Sprintf("v%d", i)), TS: int64(i + 1)}}
		if err := ta.AppendMutation(e.Key, e.Cell); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ta.FlushRun(sstable.Build(mkEntries(8, 3))); err != nil {
		t.Fatal(err)
	}
	r2, err := ta.FlushRun(sstable.Build(mkEntries(4, 7)))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := ta.FlushRun(sstable.Build(mkEntries(2, 9)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ta.ReplaceRuns([]uint64{r2, r3}, sstable.Build(mkEntries(4, 9))); err != nil {
		t.Fatal(err)
	}
	// Post-flush WAL tail on alpha, plus a tail-only table beta.
	if err := ta.AppendMutation([]byte("a-tail/c"), model.Cell{Value: []byte("tail"), TS: 100}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendMutation([]byte("b-0/c"), model.Cell{Value: []byte("beta"), TS: 1}); err != nil {
		t.Fatal(err)
	}

	// Intent churn: enough start/done cycles to checkpoint, with two
	// sticky pending intents bracketing the churn.
	sticky1 := s.NextIntentID()
	if err := s.LogIntentStart(intent(sticky1, "sticky-first")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		id := s.NextIntentID()
		if err := s.LogIntentStart(intent(id, "churn")); err != nil {
			t.Fatal(err)
		}
		if err := s.LogIntentDone(id); err != nil {
			t.Fatal(err)
		}
	}
	sticky2 := s.NextIntentID()
	if err := s.LogIntentStart(intent(sticky2, "sticky-last")); err != nil {
		t.Fatal(err)
	}
	// Double-done on one churned id: replay must stay idempotent.
	if err := s.LogIntentDone(2); err != nil {
		t.Fatal(err)
	}
}

// fingerprint renders a RecoverResult into a canonical byte form:
// tables sorted by name with their run ids, run entries and WAL tails,
// then pending intents in log order.
func fingerprint(t *testing.T, rec *Recovery) []byte {
	t.Helper()
	var buf bytes.Buffer
	tables := make([]string, 0, len(rec.Tables))
	for name := range rec.Tables {
		tables = append(tables, name)
	}
	sort.Strings(tables)
	for _, name := range tables {
		rt := rec.Tables[name]
		fmt.Fprintf(&buf, "table %s\n", name)
		for _, r := range rt.Runs {
			fmt.Fprintf(&buf, " run %d\n", r.ID)
			for _, e := range r.Table.Entries() {
				fmt.Fprintf(&buf, "  %q=%q@%d del=%v\n", e.Key, e.Cell.Value, e.Cell.TS, e.Cell.Tombstone)
			}
		}
		for _, e := range rt.Tail {
			fmt.Fprintf(&buf, " tail %q=%q@%d del=%v\n", e.Key, e.Cell.Value, e.Cell.TS, e.Cell.Tombstone)
		}
	}
	for _, in := range rec.Intents {
		fmt.Fprintf(&buf, "intent %d %s/%s %d\n", in.ID, in.Table, in.Row, len(in.Updates))
	}
	return buf.Bytes()
}

// TestRecoveryIdenticalAcrossBackends: the same workload, crashed and
// recovered on every backend, must replay to byte-identical durable
// state — the property that makes physical/mem a faithful stand-in for
// the filesystem in the simulator.
func TestRecoveryIdenticalAcrossBackends(t *testing.T) {
	backends := map[string]physical.Backend{
		"fs":     physfs.New(t.TempDir()),
		"mem":    physmem.New(),
		"faulty": faulty.New(physmem.New(), faulty.Options{Seed: 11}), // zero schedule: pure pass-through
	}
	prints := map[string][]byte{}
	for name, b := range backends {
		s, err := OpenStorage(b, Options{Policy: SyncAlways, SegmentBytes: 1 << 10})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		driveRecoveryWorkload(t, s)
		if err := s.Abandon(); err != nil { // crash: no final fsync
			t.Fatalf("%s: %v", name, err)
		}
		s2, err := OpenStorage(b, Options{Policy: SyncAlways, SegmentBytes: 1 << 10})
		if err != nil {
			t.Fatalf("%s reopen: %v", name, err)
		}
		rec, err := s2.Recover()
		if err != nil {
			t.Fatalf("%s recover: %v", name, err)
		}
		if len(rec.Intents) != 2 {
			t.Fatalf("%s: %d pending intents, want the 2 sticky ones", name, len(rec.Intents))
		}
		prints[name] = fingerprint(t, rec)
		if err := s2.Close(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if !bytes.Equal(prints["fs"], prints["mem"]) {
		t.Errorf("fs and mem recovered different state:\n--- fs ---\n%s--- mem ---\n%s", prints["fs"], prints["mem"])
	}
	if !bytes.Equal(prints["fs"], prints["faulty"]) {
		t.Errorf("fs and faulty(no-op) recovered different state:\n--- fs ---\n%s--- faulty ---\n%s", prints["fs"], prints["faulty"])
	}
}

// TestRecoveryDoubleReplayIdempotent: recovering the same crashed
// backend twice (crash during recovery, recover again) yields the same
// state both times.
func TestRecoveryDoubleReplayIdempotent(t *testing.T) {
	b := physmem.New()
	s, err := OpenStorage(b, Options{Policy: SyncAlways, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	driveRecoveryWorkload(t, s)
	if err := s.Abandon(); err != nil {
		t.Fatal(err)
	}

	var prints [][]byte
	for i := 0; i < 2; i++ {
		s2, err := OpenStorage(b, Options{Policy: SyncAlways, SegmentBytes: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := s2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		prints = append(prints, fingerprint(t, rec))
		if err := s2.Abandon(); err != nil { // crash again mid-recovery
			t.Fatal(err)
		}
	}
	if !bytes.Equal(prints[0], prints[1]) {
		t.Fatalf("double replay diverged:\n--- 1 ---\n%s--- 2 ---\n%s", prints[0], prints[1])
	}
}

// TestRecoveryTornTailAcrossCrashModel: unsynced bytes discarded by the
// mem backend's power-loss model must surface as a tolerated torn tail,
// never as lost synced records.
func TestRecoveryTornTailAcrossCrashModel(t *testing.T) {
	b := physmem.New()
	s, err := OpenStorage(b, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ta := s.Table("alpha")
	// Synced (SyncAlways acks only after fsync)...
	if err := ta.AppendMutation([]byte("acked/c"), model.Cell{Value: []byte("keep"), TS: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Abandon(); err != nil {
		t.Fatal(err)
	}
	// ...then a never-synced scratch file, the debris a crash leaves.
	segs, err := listSegments(s.tableWAL("alpha"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	seg := walDirName + "/" + tableDirName("alpha") + "/" + segs[len(segs)-1].name
	pre, err := b.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Create(seg + ".scratch")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Append([]byte("dirty")); err != nil {
		t.Fatal(err)
	}
	g.Close()
	b.Crash() // every unsynced byte vanishes; the synced segment survives

	post, err := b.ReadFile(seg)
	if err != nil {
		t.Fatalf("synced segment lost to crash model: %v", err)
	}
	if !bytes.Equal(pre, post) {
		t.Fatalf("synced segment changed across crash: %d vs %d bytes", len(pre), len(post))
	}
	s2, err := OpenStorage(b, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	rt := rec.Tables["alpha"]
	if len(rt.Tail) != 1 || string(rt.Tail[0].Cell.Value) != "keep" {
		t.Fatalf("acked record lost: %+v", rt.Tail)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryAfterInjectedFaults hammers storage through a saturating
// fault schedule with retries, then recovers with injection off: every
// operation that WAS acknowledged must replay, regardless of how many
// injected failures preceded it.
func TestRecoveryAfterInjectedFaults(t *testing.T) {
	fb := faulty.New(physmem.New(), faulty.Options{
		Seed: 23, AppendFail: 0.15, SyncFail: 0.15, CreateFail: 0.1, AtomicFail: 0.15, RemoveFail: 0.1,
	})
	s, err := OpenStorage(fb, Options{Policy: SyncAlways, SegmentBytes: 1 << 10})
	if err != nil {
		// OpenStorage itself may eat an injected fault; that path is the
		// harness's SetEnabled window, not this test's subject.
		fb.SetEnabled(false)
		s, err = OpenStorage(fb, Options{Policy: SyncAlways, SegmentBytes: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		fb.SetEnabled(true)
	}
	ta := s.Table("alpha")

	retry := func(op func() error) bool {
		for attempt := 0; attempt < 50; attempt++ {
			err := op()
			if err == nil {
				return true
			}
			if !errors.Is(err, faulty.ErrInjected) {
				t.Fatalf("non-injected failure: %v", err)
			}
		}
		return false
	}

	acked := map[string]string{}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("k-%02d/c", i)
		val := fmt.Sprintf("v-%02d", i)
		ok := retry(func() error {
			return ta.AppendMutation([]byte(key), model.Cell{Value: []byte(val), TS: int64(i + 1)})
		})
		if ok {
			acked[key] = val
		}
	}
	ackedIntents := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		id := s.NextIntentID()
		if retry(func() error { return s.LogIntentStart(intent(id, fmt.Sprintf("row-%d", id))) }) {
			ackedIntents[id] = true
		}
	}
	st := fb.Stats()
	if st.Appends+st.Syncs+st.Creates+st.Atomics+st.Removes == 0 {
		t.Fatal("schedule injected nothing; test exercised no faults")
	}
	if len(acked) == 0 {
		t.Fatal("every operation failed; retry budget too small for schedule")
	}
	if err := s.Abandon(); err != nil {
		t.Fatal(err)
	}

	// Recovery itself runs clean — the injector is off, as in the
	// simulator's restart window.
	fb.SetEnabled(false)
	s2, err := OpenStorage(fb, Options{Policy: SyncAlways, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	if rt, ok := rec.Tables["alpha"]; ok {
		for _, e := range rt.Tail {
			got[string(e.Key)] = string(e.Cell.Value)
		}
		for _, r := range rt.Runs {
			for _, e := range r.Table.Entries() {
				got[string(e.Key)] = string(e.Cell.Value)
			}
		}
	}
	for key, val := range acked {
		if got[key] != val {
			t.Errorf("acked mutation lost: %s = %q, recovered %q", key, val, got[key])
		}
	}
	pend := map[uint64]bool{}
	for _, in := range rec.Intents {
		pend[in.ID] = true
	}
	for id := range ackedIntents {
		if !pend[id] {
			t.Errorf("acked intent %d not pending after recovery", id)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
