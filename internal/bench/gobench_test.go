package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleGoBench = `goos: linux
goarch: amd64
pkg: vstore
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig3ReadBT-8        	   45392	     24639 ns/op	    6149 B/op	      54 allocs/op
BenchmarkFig3ReadMV          	   20658	     53979 ns/op	    8908 B/op	     103 allocs/op
BenchmarkNoMem-4             	     100	   1234.5 ns/op
some stray log line
PASS
ok  	vstore	26.632s
`

func TestParseGoBench(t *testing.T) {
	got, err := ParseGoBench(strings.NewReader(sampleGoBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(got), got)
	}
	bt := got[0]
	if bt.Name != "BenchmarkFig3ReadBT" || bt.Iters != 45392 ||
		bt.NsPerOp != 24639 || bt.BPerOp != 6149 || bt.AllocsPerOp != 54 {
		t.Fatalf("bad first result: %+v", bt)
	}
	if got[1].Name != "BenchmarkFig3ReadMV" {
		t.Fatalf("GOMAXPROCS-suffix-free name mishandled: %+v", got[1])
	}
	nomem := got[2]
	if nomem.NsPerOp != 1234.5 || nomem.BPerOp != -1 || nomem.AllocsPerOp != -1 {
		t.Fatalf("benchmem-less line mishandled: %+v", nomem)
	}
}

func TestMergeBenchJSONAccumulatesLabels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	base := []GoBenchResult{{Name: "BenchmarkX", Iters: 10, NsPerOp: 100, BPerOp: 8, AllocsPerOp: 2}}
	if err := MergeBenchJSON(path, "baseline", base); err != nil {
		t.Fatal(err)
	}
	opt := []GoBenchResult{{Name: "BenchmarkX", Iters: 20, NsPerOp: 50, BPerOp: 4, AllocsPerOp: 1}}
	if err := MergeBenchJSON(path, "optimized", opt); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string]map[string]GoBenchResult{}
	if err := json.Unmarshal(raw, &data); err != nil {
		t.Fatal(err)
	}
	if data["baseline"]["BenchmarkX"].NsPerOp != 100 || data["optimized"]["BenchmarkX"].NsPerOp != 50 {
		t.Fatalf("labels not accumulated: %v", data)
	}
	// Re-merging a label replaces it rather than appending.
	if err := MergeBenchJSON(path, "optimized", base); err != nil {
		t.Fatal(err)
	}
	tbl, err := CompareBenchJSON(path, "baseline", "optimized")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl, "X") {
		t.Fatalf("comparison table missing benchmark: %q", tbl)
	}
}

func TestMergeBenchJSONRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "other.json")
	if err := os.WriteFile(path, []byte(`[1,2,3]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeBenchJSON(path, "x", nil); err == nil {
		t.Fatal("merged into a non-bench JSON file")
	}
}
