package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"vstore"
	"vstore/internal/clock"
	"vstore/internal/workload"
)

// wall is the benchmark driver's time source: measurements are of real
// elapsed time by design, so the wall clock is named explicitly.
var wall = clock.Wall

// readPaths and writeScenarios are the paper's access paths.
var readPaths = []string{"BT", "SI", "MV"}

// Fig3 reproduces Figure 3: single-client read latency by primary key
// (BT), through the native secondary index (SI), and through the
// materialized view (MV). Paper result: BT ≈ MV, SI ≈ 3.5x slower.
func Fig3(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	db, err := readScenario(cfg)
	if err != nil {
		return Figure{}, err
	}
	defer db.Close()

	fig := Figure{
		ID:     "fig3",
		Title:  "Read latency (ms), single client",
		XLabel: "access path (1=BT 2=SI 3=MV)",
		YLabel: "mean latency (ms)",
	}
	for i, path := range readPaths {
		op := readOp(db, cfg, path)
		res := workload.RunFixedOps(cfg.FixedOps, cfg.Seed+int64(i), func(r *rand.Rand) error {
			return op(0, r)
		})
		if res.Errors > 0 {
			return Figure{}, fmt.Errorf("bench: fig3 %s had %d errors", path, res.Errors)
		}
		fig.Series = append(fig.Series, Series{
			Label: path,
			X:     []float64{float64(i + 1)},
			Y:     []float64{ms(res.Latency.Mean())},
		})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %s", path, res.Latency.Summary()))
	}
	return fig, nil
}

// Fig4 reproduces Figure 4: aggregate read throughput vs concurrent
// clients for the three access paths. Paper result: BT slightly above
// MV, both far above SI.
func Fig4(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	db, err := readScenario(cfg)
	if err != nil {
		return Figure{}, err
	}
	defer db.Close()

	fig := Figure{
		ID:     "fig4",
		Title:  "Read throughput (req/s) vs number of clients",
		XLabel: "clients",
		YLabel: "req/s",
	}
	for _, path := range readPaths {
		op := readOp(db, cfg, path)
		s := Series{Label: path}
		for _, clients := range cfg.ClientCounts {
			res := workload.RunClosedLoop(clients, cfg.Warmup, cfg.Duration, cfg.Seed, op)
			if res.Errors > 0 {
				return Figure{}, fmt.Errorf("bench: fig4 %s@%d had %d errors", path, clients, res.Errors)
			}
			s.X = append(s.X, float64(clients))
			s.Y = append(s.Y, res.Throughput)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig5 reproduces Figure 5: single-client write latency with no
// redundancy (BT), a native index (SI), and a view keyed by the
// updated column (MV). Paper result: BT ≈ SI, MV ≈ 2.5x slower because
// of the pre-read of the old view key.
func Fig5(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	fig := Figure{
		ID:     "fig5",
		Title:  "Write latency (ms), single client",
		XLabel: "scenario (1=BT 2=SI 3=MV)",
		YLabel: "mean latency (ms)",
	}
	for i, kind := range []string{"bt", "si", "mv"} {
		db, err := writeScenario(cfg, kind, vstore.ViewOptions{})
		if err != nil {
			return Figure{}, err
		}
		op := writeOp(db, cfg)
		res := workload.RunFixedOps(cfg.FixedOps, cfg.Seed+int64(i), func(r *rand.Rand) error {
			return op(0, r)
		})
		db.Close()
		if res.Errors > 0 {
			return Figure{}, fmt.Errorf("bench: fig5 %s had %d errors", kind, res.Errors)
		}
		label := map[string]string{"bt": "BT", "si": "SI", "mv": "MV"}[kind]
		fig.Series = append(fig.Series, Series{
			Label: label,
			X:     []float64{float64(i + 1)},
			Y:     []float64{ms(res.Latency.Mean())},
		})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %s", label, res.Latency.Summary()))
	}
	return fig, nil
}

// Fig6 reproduces Figure 6: aggregate write throughput vs concurrent
// clients for the same three scenarios. Paper result: BT > SI > MV.
func Fig6(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	fig := Figure{
		ID:     "fig6",
		Title:  "Write throughput (req/s) vs number of clients",
		XLabel: "clients",
		YLabel: "req/s",
	}
	for _, kind := range []string{"bt", "si", "mv"} {
		db, err := writeScenario(cfg, kind, vstore.ViewOptions{})
		if err != nil {
			return Figure{}, err
		}
		op := writeOp(db, cfg)
		s := Series{Label: map[string]string{"bt": "BT", "si": "SI", "mv": "MV"}[kind]}
		for _, clients := range cfg.ClientCounts {
			res := workload.RunClosedLoop(clients, cfg.Warmup, cfg.Duration, cfg.Seed, op)
			if res.Errors > 0 {
				db.Close()
				return Figure{}, fmt.Errorf("bench: fig6 %s@%d had %d errors", kind, clients, res.Errors)
			}
			s.X = append(s.X, float64(clients))
			s.Y = append(s.Y, res.Throughput)
		}
		db.Close()
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// propagationLag models the prototype's asynchronous maintenance
// queue for the session experiment: propagation start times are spread
// uniformly over [0, 640ms), matching the paper's observation that the
// pair latency "levels off after 640 ms, which indicates that almost
// all update propagations completed in less time than that". The
// resulting expected blocking time is E[max(0, D - gap)] =
// (640ms - gap)^2 / 1280ms: a smooth decline to zero at the 640ms gap,
// which is the curve Figure 7 draws. (The paper's absolute lag
// distribution is unknown; only its support shows in the figure.)
func propagationLag(seed int64) func() time.Duration {
	r := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		return time.Duration(r.Int63n(int64(640 * time.Millisecond)))
	}
}

// Fig7 reproduces Figure 7: the cost of session guarantees. One client
// issues Put/Get pairs with a growing client-introduced gap between
// them; reported is mean(total pair latency − gap). SI pairs read
// through the (synchronously maintained) index; MV pairs read the view
// under a session guarantee, so the Get blocks until the session's own
// propagation completed. Paper result: MV starts high and decays to
// near the SI/steady level as the gap approaches the propagation-time
// tail; SI is flat.
func Fig7(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	fig := Figure{
		ID:     "fig7",
		Title:  "Session-guarantee Put/Get pair latency (ms) vs client gap (ms)",
		XLabel: "gap (ms)",
		YLabel: "pair latency - gap (ms)",
	}
	ctx := context.Background()

	// SI variant: index on the view-key column; Put updates the
	// payload; Get re-reads through the index.
	{
		db, err := writeScenario(cfg, "si", vstore.ViewOptions{})
		if err != nil {
			return Figure{}, err
		}
		s := Series{Label: "SI"}
		r := rand.New(rand.NewSource(cfg.Seed))
		c := db.Client(0)
		for _, gap := range cfg.Gaps {
			var total time.Duration
			for p := 0; p < cfg.PairsPerGap; p++ {
				i := r.Intn(cfg.Rows)
				start := wall.Now()
				if err := c.Put(ctx, tableName, workload.Key("data-", i), vstore.Values{payloadCol: fmt.Sprint(p)}); err != nil {
					db.Close()
					return Figure{}, err
				}
				wall.Sleep(gap)
				if _, err := c.QueryIndex(ctx, tableName, secKeyCol, secValue(i), vstore.WithColumns(payloadCol)); err != nil {
					db.Close()
					return Figure{}, err
				}
				total += wall.Now().Sub(start) - gap
			}
			s.X = append(s.X, ms(gap))
			s.Y = append(s.Y, ms(total/time.Duration(cfg.PairsPerGap)))
		}
		db.Close()
		fig.Series = append(fig.Series, s)
	}

	// MV variant: view keyed by the secondary key materializing the
	// payload; Put updates the payload inside a session; the session
	// Get blocks until the propagation completed.
	{
		db, err := openDB(cfg, vstore.ViewOptions{PropagationDelay: propagationLag(cfg.Seed)})
		if err != nil {
			return Figure{}, err
		}
		if err := db.CreateTable(tableName); err != nil {
			db.Close()
			return Figure{}, err
		}
		if err := loadRows(db, cfg, cfg.Rows); err != nil {
			db.Close()
			return Figure{}, err
		}
		if err := db.CreateView(vstore.ViewDef{
			Name: viewName, Base: tableName, ViewKey: secKeyCol, Materialized: []string{payloadCol},
		}); err != nil {
			db.Close()
			return Figure{}, err
		}
		s := Series{Label: "MV"}
		r := rand.New(rand.NewSource(cfg.Seed))
		sc := db.Client(0).Session()
		for _, gap := range cfg.Gaps {
			var total time.Duration
			for p := 0; p < cfg.PairsPerGap; p++ {
				i := r.Intn(cfg.Rows)
				start := wall.Now()
				if err := sc.Put(ctx, tableName, workload.Key("data-", i), vstore.Values{payloadCol: fmt.Sprint(p)}); err != nil {
					db.Close()
					return Figure{}, err
				}
				wall.Sleep(gap)
				if _, err := sc.GetView(ctx, viewName, secValue(i), vstore.WithColumns(payloadCol)); err != nil {
					db.Close()
					return Figure{}, err
				}
				total += wall.Now().Sub(start) - gap
			}
			s.X = append(s.X, ms(gap))
			s.Y = append(s.Y, ms(total/time.Duration(cfg.PairsPerGap)))
		}
		sc.EndSession()
		db.Close()
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8 reproduces Figure 8: the effect of update skew on write
// throughput. A fixed set of clients updates the view-key column of
// rows drawn from a shrinking key range; as the range narrows, the
// per-row stale chains grow and propagation for the hot rows
// serializes, collapsing throughput. Paper result: throughput drops
// sharply as the range approaches a single row.
func Fig8(cfg Config) (Figure, error) {
	// A small maintenance backlog makes the backpressure regime (the
	// sustained-throughput story the paper's 5-minute runs measured)
	// reachable within our shorter windows.
	return fig8(cfg, vstore.ViewOptions{MaxPendingPropagations: 32}, "fig8")
}

func fig8(cfg Config, views vstore.ViewOptions, id string) (Figure, error) {
	cfg = cfg.withDefaults()
	fig := Figure{
		ID:     id,
		Title:  "Write throughput (req/s) vs update key-range width, " + fmt.Sprint(cfg.SkewClients) + " clients",
		XLabel: "range width",
		YLabel: "req/s",
	}
	s := Series{Label: "MV"}
	ctx := context.Background()
	for _, width := range cfg.RangeWidths {
		rows := cfg.Rows
		if width > rows {
			rows = width
		}
		loadCfg := cfg
		loadCfg.Rows = rows
		db, err := writeScenario(loadCfg, "mv", views)
		if err != nil {
			return Figure{}, err
		}
		chooser := workload.Range{Width: width, Prefix: "data-"}
		res := workload.RunClosedLoop(cfg.SkewClients, cfg.Warmup, cfg.Duration, cfg.Seed, func(client int, r *rand.Rand) error {
			return db.Client(client).Put(ctx, tableName, chooser.Next(r), vstore.Values{
				secKeyCol: secValue(r.Intn(rows * 2)),
			})
		})
		st := db.Stats()
		db.Close()
		if res.Errors > 0 {
			return Figure{}, fmt.Errorf("bench: %s width=%d had %d errors", id, width, res.Errors)
		}
		s.X = append(s.X, float64(width))
		s.Y = append(s.Y, res.Throughput)
		fig.Notes = append(fig.Notes, fmt.Sprintf("width=%d: chain hops=%d, propagations=%d, dropped=%d",
			width, st.Views.ChainHops, st.Views.Propagations, st.Views.PropagationsDropped))
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
