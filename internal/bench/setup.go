package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"vstore"
	"vstore/internal/workload"
)

// Config parameterizes the reproduction testbed. Defaults() mirrors
// the paper's setup at laptop scale; Quick() shrinks everything for CI
// and Go benchmarks.
type Config struct {
	// Nodes and N are the cluster shape. Paper: 4 nodes, N=3.
	Nodes int
	N     int
	// W and R are the client quorums.
	W, R int
	// Rows is the base-table population. Paper: 1,000,000.
	Rows int
	// ClientCounts is the concurrency sweep of Figures 4 and 6.
	ClientCounts []int
	// Duration and Warmup bound each closed-loop throughput point.
	Duration time.Duration
	Warmup   time.Duration
	// FixedOps is the single-client operation count for the latency
	// figures (paper: 100,000).
	FixedOps int
	// PairsPerGap and Gaps drive the session-guarantee experiment
	// (Figure 7).
	PairsPerGap int
	Gaps        []time.Duration
	// RangeWidths drives the update-skew experiment (Figure 8).
	// Paper: 100,000 down to 1.
	RangeWidths []int
	// SkewClients is Figure 8's client count (paper: 10).
	SkewClients int

	// Network and node-capacity model (the hardware substitution).
	Latency time.Duration
	Jitter  time.Duration
	Workers int
	Service vstore.ServiceTimes

	Seed int64
}

// Defaults returns the paper-shaped testbed at laptop scale. The
// network/service magnitudes are deliberately ~10x a real LAN's: Go's
// sleep granularity is about a millisecond, so sub-millisecond
// parameters would all be rounded up to the same value and the
// *relative* costs — the thing the figures are about — would be
// destroyed. At this scale a simulated microsecond of the paper's
// testbed is roughly ten simulated microseconds here, uniformly, which
// preserves every ratio.
func Defaults() Config {
	return Config{
		Nodes:        4,
		N:            3,
		W:            2,
		R:            2,
		Rows:         50000,
		ClientCounts: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		Duration:     2 * time.Second,
		Warmup:       300 * time.Millisecond,
		FixedOps:     1200,
		PairsPerGap:  25,
		Gaps: []time.Duration{
			10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
			80 * time.Millisecond, 160 * time.Millisecond, 320 * time.Millisecond,
			640 * time.Millisecond, 1000 * time.Millisecond,
		},
		RangeWidths: []int{1, 10, 100, 1000, 10000, 100000},
		SkewClients: 10,
		Latency:     2 * time.Millisecond,
		Jitter:      500 * time.Microsecond,
		Workers:     8,
		Service: vstore.ServiceTimes{
			Read:       500 * time.Microsecond,
			Write:      500 * time.Microsecond,
			IndexRead:  18 * time.Millisecond,
			IndexWrite: 500 * time.Microsecond,
		},
		Seed: 1,
	}
}

// Quick returns a drastically shrunk configuration for tests and Go
// benchmarks: zero network latency, no service costs, small
// populations, sub-second runs. Shapes are still visible; absolute
// numbers are meaningless.
func Quick() Config {
	c := Defaults()
	c.Rows = 2000
	c.ClientCounts = []int{1, 4}
	c.Duration = 150 * time.Millisecond
	c.Warmup = 30 * time.Millisecond
	c.FixedOps = 300
	c.PairsPerGap = 4
	c.Gaps = []time.Duration{time.Millisecond, 8 * time.Millisecond, 32 * time.Millisecond}
	c.RangeWidths = []int{1, 100, 2000}
	c.SkewClients = 4
	c.Latency = 0
	c.Jitter = 0
	c.Workers = 0
	c.Service = vstore.ServiceTimes{}
	return c
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.Nodes == 0 {
		c.Nodes = d.Nodes
	}
	if c.N == 0 {
		c.N = d.N
	}
	if c.W == 0 {
		c.W = d.W
	}
	if c.R == 0 {
		c.R = d.R
	}
	if c.Rows == 0 {
		c.Rows = d.Rows
	}
	if len(c.ClientCounts) == 0 {
		c.ClientCounts = d.ClientCounts
	}
	if c.Duration == 0 {
		c.Duration = d.Duration
	}
	if c.Warmup == 0 {
		c.Warmup = d.Warmup
	}
	if c.FixedOps == 0 {
		c.FixedOps = d.FixedOps
	}
	if c.PairsPerGap == 0 {
		c.PairsPerGap = d.PairsPerGap
	}
	if len(c.Gaps) == 0 {
		c.Gaps = d.Gaps
	}
	if len(c.RangeWidths) == 0 {
		c.RangeWidths = d.RangeWidths
	}
	if c.SkewClients == 0 {
		c.SkewClients = d.SkewClients
	}
	return c
}

// Table and column names of the benchmark schema, mirroring the
// paper's single column family with a unique secondary key attribute.
const (
	tableName  = "data"
	secKeyCol  = "skey"
	payloadCol = "payload"
	viewName   = "bysec"
)

// secValue maps row index i to its unique secondary key value.
func secValue(i int) string { return workload.Key("sec-", i) }

// openDB builds a cluster from the config.
func openDB(cfg Config, views vstore.ViewOptions) (*vstore.DB, error) {
	var network *vstore.NetworkSim
	if cfg.Latency > 0 || cfg.Jitter > 0 {
		network = &vstore.NetworkSim{Latency: cfg.Latency, Jitter: cfg.Jitter}
	}
	return vstore.Open(vstore.Config{
		Nodes:             cfg.Nodes,
		ReplicationFactor: cfg.N,
		WriteQuorum:       cfg.W,
		ReadQuorum:        cfg.R,
		Network:           network,
		Workers:           cfg.Workers,
		Service:           cfg.Service,
		Views:             views,
		Seed:              cfg.Seed,
	})
}

// loadRows writes the base population in parallel: row data-i with a
// unique secondary key and a payload, like the paper's 1M-row table.
func loadRows(db *vstore.DB, cfg Config, rows int) error {
	const parallelism = 64
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	for i := 0; i < rows; i++ {
		i := i
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			c := db.Client(i)
			err := c.Put(ctx, tableName, workload.Key("data-", i), vstore.Values{
				secKeyCol:  secValue(i),
				payloadCol: string(payload),
			})
			if err != nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return fmt.Errorf("bench: load failed: %w", err)
	default:
		return nil
	}
}

// readScenario builds the shared read testbed: populated base table
// with both a native secondary index and a materialized view over the
// secondary key (reads don't interfere, so one cluster serves BT, SI
// and MV runs).
func readScenario(cfg Config) (*vstore.DB, error) {
	db, err := openDB(cfg, vstore.ViewOptions{})
	if err != nil {
		return nil, err
	}
	if err := db.CreateTable(tableName); err != nil {
		db.Close()
		return nil, err
	}
	if err := loadRows(db, cfg, cfg.Rows); err != nil {
		db.Close()
		return nil, err
	}
	if err := db.CreateIndex(tableName, secKeyCol); err != nil {
		db.Close()
		return nil, err
	}
	if err := db.CreateView(vstore.ViewDef{
		Name: viewName, Base: tableName, ViewKey: secKeyCol, Materialized: []string{payloadCol},
	}); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// writeScenario builds one of the paper's three write testbeds:
// "bt" (bare table), "si" (native index on the updated column), "mv"
// (view keyed by the updated column).
func writeScenario(cfg Config, kind string, views vstore.ViewOptions) (*vstore.DB, error) {
	db, err := openDB(cfg, views)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*vstore.DB, error) { db.Close(); return nil, err }
	if err := db.CreateTable(tableName); err != nil {
		return fail(err)
	}
	if err := loadRows(db, cfg, cfg.Rows); err != nil {
		return fail(err)
	}
	switch kind {
	case "bt":
	case "si":
		if err := db.CreateIndex(tableName, secKeyCol); err != nil {
			return fail(err)
		}
	case "mv":
		if err := db.CreateView(vstore.ViewDef{
			Name: viewName, Base: tableName, ViewKey: secKeyCol,
		}); err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("bench: unknown scenario %q", kind))
	}
	return db, nil
}

// readOp returns the closed-loop read operation for an access path.
func readOp(db *vstore.DB, cfg Config, path string) func(client int, r *rand.Rand) error {
	keys := workload.Uniform{N: cfg.Rows, Prefix: "data-"}
	ctx := context.Background()
	switch path {
	case "BT":
		return func(client int, r *rand.Rand) error {
			_, err := db.Client(client).Get(ctx, tableName, keys.Next(r), vstore.WithColumns(payloadCol))
			return err
		}
	case "SI":
		return func(client int, r *rand.Rand) error {
			rows, err := db.Client(client).QueryIndex(ctx, tableName, secKeyCol, secValue(r.Intn(cfg.Rows)), vstore.WithColumns(payloadCol))
			if err == nil && len(rows) != 1 {
				return fmt.Errorf("bench: SI read found %d rows", len(rows))
			}
			return err
		}
	case "MV":
		return func(client int, r *rand.Rand) error {
			rows, err := db.Client(client).GetView(ctx, viewName, secValue(r.Intn(cfg.Rows)), vstore.WithColumns(payloadCol))
			if err == nil && len(rows) != 1 {
				return fmt.Errorf("bench: MV read found %d rows", len(rows))
			}
			return err
		}
	default:
		panic("bench: unknown read path " + path)
	}
}

// writeOp returns the closed-loop update operation of Figures 5/6:
// update the secondary-key column of a uniformly chosen row to a fresh
// value.
func writeOp(db *vstore.DB, cfg Config) func(client int, r *rand.Rand) error {
	keys := workload.Uniform{N: cfg.Rows, Prefix: "data-"}
	ctx := context.Background()
	return func(client int, r *rand.Rand) error {
		return db.Client(client).Put(ctx, tableName, keys.Next(r), vstore.Values{
			secKeyCol: secValue(r.Intn(cfg.Rows * 2)),
		})
	}
}
