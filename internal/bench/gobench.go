package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// GoBenchResult is one parsed `go test -bench -benchmem` result line.
type GoBenchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkFig3ReadMV".
	Name string `json:"name"`
	// Iters is the measured iteration count (b.N).
	Iters int64 `json:"iters"`
	// NsPerOp, BPerOp and AllocsPerOp are the standard benchmem
	// metrics. BPerOp/AllocsPerOp are -1 when -benchmem was off.
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// P50NS/P95NS/P99NS are tail-latency metrics emitted by benchmarks
	// that call b.ReportMetric with p50-ns/p95-ns/p99-ns units (the
	// histogram-backed read benchmarks). Zero when absent.
	P50NS float64 `json:"p50_ns,omitempty"`
	P95NS float64 `json:"p95_ns,omitempty"`
	P99NS float64 `json:"p99_ns,omitempty"`
}

// ParseGoBench extracts benchmark results from `go test -bench` text
// output. Lines that are not benchmark results (goos/pkg headers,
// PASS/ok trailers, log output) are skipped, so the raw command output
// can be fed in unfiltered.
func ParseGoBench(r io.Reader) ([]GoBenchResult, error) {
	var out []GoBenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		res, ok := parseGoBenchLine(sc.Text())
		if ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// parseGoBenchLine parses one result line of the form
//
//	BenchmarkName(-N)  iters  X ns/op  [Y B/op  Z allocs/op]
func parseGoBenchLine(line string) (GoBenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return GoBenchResult{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return GoBenchResult{}, false
	}
	res := GoBenchResult{Name: name, Iters: iters, BPerOp: -1, AllocsPerOp: -1}
	// The remainder is (value, unit) pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return GoBenchResult{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "B/op":
			res.BPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		case "p50-ns":
			res.P50NS = v
		case "p95-ns":
			res.P95NS = v
		case "p99-ns":
			res.P99NS = v
		}
	}
	if !sawNs {
		return GoBenchResult{}, false
	}
	return res, true
}

// MergeBenchJSON loads the JSON file at path (tolerating a missing
// file), replaces the result set stored under label, and writes the
// file back. The file maps label → benchmark name → metrics, so
// successive runs ("baseline", "optimized") accumulate side by side
// for machine comparison.
func MergeBenchJSON(path, label string, results []GoBenchResult) error {
	if label == "" {
		return fmt.Errorf("bench: empty label")
	}
	data := map[string]map[string]GoBenchResult{}
	//lint:ignore physcheck benchmark tooling reads its own results file, not store data; durability rules don't apply
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &data); err != nil {
			return fmt.Errorf("bench: %s exists but is not a bench JSON file: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	set := map[string]GoBenchResult{}
	for _, r := range results {
		set[r.Name] = r
	}
	data[label] = set
	raw, err := marshalBenchJSON(data)
	if err != nil {
		return err
	}
	//lint:ignore physcheck benchmark tooling writes its own results file, not store data; durability rules don't apply
	return os.WriteFile(path, raw, 0o644)
}

// marshalBenchJSON renders the label → name → result map with sorted
// keys (encoding/json sorts map keys already) and stable indentation.
func marshalBenchJSON(data map[string]map[string]GoBenchResult) ([]byte, error) {
	raw, err := json.MarshalIndent(data, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// CompareBenchJSON formats a before/after table for two labels present
// in a bench JSON file, with the ns/op and allocs/op deltas. Benchmarks
// missing from either label are skipped.
func CompareBenchJSON(path, beforeLabel, afterLabel string) (string, error) {
	//lint:ignore physcheck benchmark tooling reads its own results file, not store data; durability rules don't apply
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	data := map[string]map[string]GoBenchResult{}
	if err := json.Unmarshal(raw, &data); err != nil {
		return "", err
	}
	before, after := data[beforeLabel], data[afterLabel]
	if before == nil || after == nil {
		return "", fmt.Errorf("bench: %s lacks label %q or %q", path, beforeLabel, afterLabel)
	}
	var names []string
	for name := range before {
		if _, ok := after[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %12s %12s %8s %10s\n", "benchmark", beforeLabel, afterLabel, "ns Δ", "allocs Δ")
	for _, name := range names {
		bb, aa := before[name], after[name]
		fmt.Fprintf(&b, "%-34s %10.0fns %10.0fns %7.1f%% %9.1f%%\n",
			strings.TrimPrefix(name, "Benchmark"),
			bb.NsPerOp, aa.NsPerOp,
			pctDelta(bb.NsPerOp, aa.NsPerOp), pctDelta(bb.AllocsPerOp, aa.AllocsPerOp))
	}
	return b.String(), nil
}

func pctDelta(before, after float64) float64 {
	if before <= 0 {
		return 0
	}
	return (after - before) / before * 100
}
