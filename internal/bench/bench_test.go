package bench

import (
	"strings"
	"testing"
	"time"
)

// The Quick config exercises every runner end to end; shape assertions
// are loose (zero-latency fabric) but catch wiring mistakes.

func TestFig3Quick(t *testing.T) {
	fig, err := Fig3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if s.Y[0] <= 0 {
			t.Fatalf("series %s has nonpositive latency", s.Label)
		}
	}
	// No ordering assertion here: on the zero-cost Quick fabric the
	// BT/SI/MV separation is dominated by scheduler noise. The
	// calibrated run (mvbench with Defaults) is where the paper's
	// ordering is checked; see TestFig8SkewCollapse for the pattern.
	if out := fig.String(); !strings.Contains(out, "FIG3") {
		t.Fatalf("render: %q", out)
	}
}

func TestFig4Quick(t *testing.T) {
	fig, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if len(s.X) != 2 {
			t.Fatalf("series %s has %d points", s.Label, len(s.X))
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %s has nonpositive throughput", s.Label)
			}
		}
	}
	if csv := fig.CSV(); !strings.HasPrefix(csv, "x,BT,SI,MV") {
		t.Fatalf("csv header: %q", csv)
	}
}

func TestFig5Quick(t *testing.T) {
	fig, err := Fig5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, s := range fig.Series {
		vals[s.Label] = s.Y[0]
	}
	// The MV pre-read (two quorum rounds vs one) must show up even on
	// the free fabric.
	if vals["MV"] <= vals["BT"] {
		t.Fatalf("MV write (%.4fms) not slower than BT (%.4fms)", vals["MV"], vals["BT"])
	}
}

func TestFig6Quick(t *testing.T) {
	fig, err := Fig6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
}

func TestFig7Quick(t *testing.T) {
	fig, err := Fig7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 3 {
			t.Fatalf("series %s has %d gaps", s.Label, len(s.X))
		}
	}
}

func TestFig8Quick(t *testing.T) {
	fig, err := Fig8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.X) != 3 {
		t.Fatalf("points = %d", len(s.X))
	}
	for _, y := range s.Y {
		if y <= 0 {
			t.Fatal("nonpositive throughput")
		}
	}
}

func TestFig8SkewCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the capacity-model fabric")
	}
	// The collapse only appears with finite node capacity and network
	// latency: propagation work for the hot row then competes with the
	// writes. Scaled-down version of the paper config.
	cfg := Defaults()
	cfg.Rows = 4000
	cfg.RangeWidths = []int{1, 4000}
	cfg.SkewClients = 8
	cfg.Duration = 1200 * time.Millisecond
	cfg.Warmup = 200 * time.Millisecond
	fig, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if s.Y[0] >= s.Y[1]*0.7 {
		t.Fatalf("no skew collapse: width=1 %.0f vs width=4000 %.0f\n%s", s.Y[0], s.Y[1], fig)
	}
}

func TestAblationsQuick(t *testing.T) {
	cfg := Quick()
	for _, run := range []struct {
		name string
		fn   func(Config) (Figure, error)
	}{
		{"preread", AblationPreRead},
		{"sync", AblationSyncMaintenance},
		{"matwidth", AblationMaterializedWidth},
	} {
		fig, err := run.fn(cfg)
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if len(fig.Series) == 0 {
			t.Fatalf("%s: empty figure", run.name)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	fig := Figure{
		ID: "figX", Title: "demo", XLabel: "x",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "b", X: []float64{2, 3}, Y: []float64{5, 6.5}},
		},
		Notes: []string{"hello"},
	}
	out := fig.String()
	for _, want := range []string{"FIGX", "a", "b", "10", "6.5", "note: hello", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "x,a,b") || !strings.Contains(csv, "3,,6.5") {
		t.Fatalf("csv:\n%s", csv)
	}
	empty := Figure{ID: "e", Title: "t"}
	if !strings.Contains(empty.String(), "no data") {
		t.Fatal("empty figure rendering")
	}
}
