// Package bench reproduces the paper's evaluation (Section VI): one
// runner per figure, each building a paper-shaped cluster (4 nodes,
// N=3, simulated network and service costs standing in for the
// original hardware testbed — see DESIGN.md for the substitution
// argument), driving the same workload, and reporting the same series
// the figure plots. Absolute numbers differ from the paper's testbed;
// the comparisons (who wins, by what factor, where the knees are) are
// the reproduction target, and EXPERIMENTS.md records both.
package bench

import (
	"fmt"
	"strings"
)

// Series is one labeled line/bar group of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a reproduced table/plot: the same series the paper draws,
// as numbers.
type Figure struct {
	ID     string // e.g. "fig3"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// String renders the figure as an aligned text table: one row per X
// value, one column per series.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	if len(f.Series) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}

	// Collect the union of X values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	byX := make([]map[float64]float64, len(f.Series))
	for i, s := range f.Series {
		byX[i] = map[float64]float64{}
		for j, x := range s.X {
			byX[i][x] = s.Y[j]
		}
	}

	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for i := range f.Series {
			if y, ok := byX[i][x]; ok {
				row = append(row, trimFloat(y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		b.WriteString("  ")
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteString("\n")
		if ri == 0 {
			b.WriteString("  ")
			for i := range row {
				b.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			b.WriteString("\n")
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as x,series1,series2,... lines.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		b.WriteString("," + s.Label)
	}
	b.WriteString("\n")
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	byX := make([]map[float64]float64, len(f.Series))
	for i, s := range f.Series {
		byX[i] = map[float64]float64{}
		for j, x := range s.X {
			byX[i][x] = s.Y[j]
		}
	}
	for _, x := range xs {
		b.WriteString(trimFloat(x))
		for i := range f.Series {
			if y, ok := byX[i][x]; ok {
				b.WriteString("," + trimFloat(y))
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
