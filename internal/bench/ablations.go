package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"vstore"
	"vstore/internal/workload"
)

// This file measures the design choices the paper discusses but does
// not evaluate (DESIGN.md's ablation table).

// AblationPreRead compares MV write latency with the prototype's
// separate Get-then-Put against the combined single-round request the
// paper's Section IV-C proposes ("it may be possible to eliminate some
// or all of this additional latency by combining the Put and Get
// operations ... but our prototype does not do so").
func AblationPreRead(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	fig := Figure{
		ID:     "ablation-preread",
		Title:  "MV write latency (ms): separate pre-read vs combined Get-then-Put",
		XLabel: "variant (1=separate 2=combined)",
		YLabel: "mean latency (ms)",
	}
	variants := []struct {
		label    string
		combined bool
	}{
		{"separate", false},
		{"combined", true},
	}
	for i, v := range variants {
		db, err := writeScenario(cfg, "mv", vstore.ViewOptions{CombinedGetThenPut: v.combined})
		if err != nil {
			return Figure{}, err
		}
		op := writeOp(db, cfg)
		res := workload.RunFixedOps(cfg.FixedOps, cfg.Seed, func(r *rand.Rand) error { return op(0, r) })
		db.Close()
		if res.Errors > 0 {
			return Figure{}, fmt.Errorf("bench: preread ablation %s had %d errors", v.label, res.Errors)
		}
		fig.Series = append(fig.Series, Series{
			Label: v.label,
			X:     []float64{float64(i + 1)},
			Y:     []float64{ms(res.Latency.Mean())},
		})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %s", v.label, res.Latency.Summary()))
	}
	return fig, nil
}

// AblationConcurrencyMode reruns the skew experiment (Figure 8) with
// the two concurrency-control options of Section IV-F: the
// coordinator-driven lock service vs dedicated propagators assigned by
// consistent hashing.
func AblationConcurrencyMode(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	fig := Figure{
		ID:     "ablation-concurrency",
		Title:  "Skewed write throughput (req/s): locks vs dedicated propagators",
		XLabel: "range width",
		YLabel: "req/s",
	}
	// Three-point sweep: the hot row, the knee region, and the wide
	// baseline; the backlog bound matches Fig8's so backpressure is
	// comparable.
	cfg.RangeWidths = []int{1, 100, 100000}
	modes := []struct {
		label string
		views vstore.ViewOptions
	}{
		{"locks", vstore.ViewOptions{MaxPendingPropagations: 32}},
		{"propagators", vstore.ViewOptions{DedicatedPropagators: true, MaxPendingPropagations: 32}},
	}
	for _, m := range modes {
		sub, err := fig8(cfg, m.views, "tmp")
		if err != nil {
			return Figure{}, err
		}
		s := sub.Series[0]
		s.Label = m.label
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationPathCompression reruns the skew experiment with and without
// stale-chain path compression (this implementation's extension beyond
// the paper).
func AblationPathCompression(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	fig := Figure{
		ID:     "ablation-compression",
		Title:  "Skewed write throughput (req/s): plain chains vs path compression",
		XLabel: "range width",
		YLabel: "req/s",
	}
	cfg.RangeWidths = []int{1, 100, 100000}
	modes := []struct {
		label string
		views vstore.ViewOptions
	}{
		{"plain", vstore.ViewOptions{MaxPendingPropagations: 32}},
		{"compressed", vstore.ViewOptions{PathCompression: true, MaxPendingPropagations: 32}},
	}
	for _, m := range modes {
		sub, err := fig8(cfg, m.views, "tmp")
		if err != nil {
			return Figure{}, err
		}
		s := sub.Series[0]
		s.Label = m.label
		fig.Series = append(fig.Series, s)
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %s", m.label, sub.Notes[0]))
	}
	return fig, nil
}

// AblationMaterializedWidth measures the cost of view-materialized
// columns: the full maintenance latency of a view-key update (run with
// synchronous maintenance so CopyData's work — which grows with the
// number of materialized columns the new live row must carry — lands
// in the measured latency). The paper prices materialized columns
// qualitatively ("additional space overhead ... and additional view
// maintenance overhead"); this puts numbers on it.
func AblationMaterializedWidth(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	fig := Figure{
		ID:     "ablation-matwidth",
		Title:  "MV view-key-update maintenance latency (ms) vs materialized column count",
		XLabel: "materialized columns",
		YLabel: "mean latency (ms), synchronous maintenance",
	}
	ctx := context.Background()
	s := Series{Label: "MV"}
	for _, width := range []int{0, 1, 2, 4, 8} {
		db, err := openDB(cfg, vstore.ViewOptions{SynchronousMaintenance: true})
		if err != nil {
			return Figure{}, err
		}
		if err := db.CreateTable(tableName); err != nil {
			db.Close()
			return Figure{}, err
		}
		// Populate rows carrying `width` extra columns.
		mats := make([]string, 0, width)
		for i := 0; i < width; i++ {
			mats = append(mats, fmt.Sprintf("m%d", i))
		}
		rows := cfg.Rows / 10
		if rows < 100 {
			rows = 100
		}
		loadCtx, cancel := context.WithTimeout(ctx, 5*time.Minute)
		for i := 0; i < rows; i++ {
			vals := vstore.Values{secKeyCol: secValue(i)}
			for _, m := range mats {
				vals[m] = "xxxxxxxxxxxxxxxx"
			}
			if err := db.Client(i).Put(loadCtx, tableName, workload.Key("data-", i), vals); err != nil {
				cancel()
				db.Close()
				return Figure{}, err
			}
		}
		cancel()
		if err := db.CreateView(vstore.ViewDef{
			Name: viewName, Base: tableName, ViewKey: secKeyCol, Materialized: mats,
		}); err != nil {
			db.Close()
			return Figure{}, err
		}
		keys := workload.Uniform{N: rows, Prefix: "data-"}
		res := workload.RunFixedOps(cfg.FixedOps/2, cfg.Seed, func(r *rand.Rand) error {
			return db.Client(0).Put(ctx, tableName, keys.Next(r), vstore.Values{
				secKeyCol: secValue(r.Intn(rows * 2)),
			})
		})
		quiesceCtx, cancel2 := context.WithTimeout(ctx, time.Minute)
		db.QuiesceViews(quiesceCtx)
		cancel2()
		db.Close()
		if res.Errors > 0 {
			return Figure{}, fmt.Errorf("bench: matwidth %d had %d errors", width, res.Errors)
		}
		s.X = append(s.X, float64(width))
		s.Y = append(s.Y, ms(res.Latency.Mean()))
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// AblationSyncMaintenance contrasts asynchronous maintenance (the
// paper's choice) with synchronous maintenance (base Put blocks until
// the view is updated), quantifying the latency argument of Section
// IV: "synchronous view maintenance adds latency to Put operations on
// base tables".
func AblationSyncMaintenance(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	fig := Figure{
		ID:     "ablation-sync",
		Title:  "MV write latency (ms): asynchronous vs synchronous maintenance",
		XLabel: "variant (1=async 2=sync)",
		YLabel: "mean latency (ms)",
	}
	variants := []struct {
		label string
		views vstore.ViewOptions
	}{
		{"async", vstore.ViewOptions{}},
		{"sync", vstore.ViewOptions{SynchronousMaintenance: true}},
	}
	for i, v := range variants {
		db, err := writeScenario(cfg, "mv", v.views)
		if err != nil {
			return Figure{}, err
		}
		op := writeOp(db, cfg)
		res := workload.RunFixedOps(cfg.FixedOps/2, cfg.Seed, func(r *rand.Rand) error { return op(0, r) })
		db.Close()
		if res.Errors > 0 {
			return Figure{}, fmt.Errorf("bench: sync ablation %s had %d errors", v.label, res.Errors)
		}
		fig.Series = append(fig.Series, Series{
			Label: v.label,
			X:     []float64{float64(i + 1)},
			Y:     []float64{ms(res.Latency.Mean())},
		})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %s", v.label, res.Latency.Summary()))
	}
	return fig, nil
}

// All runs every figure and ablation, returning them in paper order.
func All(cfg Config) ([]Figure, error) {
	runners := []func(Config) (Figure, error){
		Fig3, Fig4, Fig5, Fig6, Fig7, Fig8,
		AblationPreRead, AblationSyncMaintenance, AblationConcurrencyMode,
		AblationPathCompression, AblationMaterializedWidth,
	}
	out := make([]Figure, 0, len(runners))
	for _, run := range runners {
		f, err := run(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
	return out, nil
}
