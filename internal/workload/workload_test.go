package workload

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestUniformCoversPopulation(t *testing.T) {
	u := Uniform{N: 10, Prefix: "k-"}
	r := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		k := u.Next(r)
		if !strings.HasPrefix(k, "k-") {
			t.Fatalf("bad key %q", k)
		}
		seen[k] = true
	}
	if len(seen) != 10 {
		t.Fatalf("uniform chooser visited %d keys, want 10", len(seen))
	}
}

func TestZipfSkewed(t *testing.T) {
	z := &Zipf{N: 1000, S: 1.3, Prefix: "k-"}
	r := rand.New(rand.NewSource(2))
	counts := map[string]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[z.Next(r)]++
	}
	hot := counts[Key("k-", 0)]
	if hot < draws/20 {
		t.Fatalf("hottest key drawn %d/%d times; not skewed", hot, draws)
	}
}

func TestRangeWidths(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	one := Range{Width: 1, Prefix: "k-"}
	for i := 0; i < 20; i++ {
		if one.Next(r) != Key("k-", 0) {
			t.Fatal("width-1 range must always return key 0")
		}
	}
	ten := Range{Width: 10, Prefix: "k-"}
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		seen[ten.Next(r)] = true
	}
	if len(seen) != 10 {
		t.Fatalf("width-10 range visited %d keys", len(seen))
	}
}

func TestRunClosedLoopMeasures(t *testing.T) {
	res := RunClosedLoop(4, 10*time.Millisecond, 100*time.Millisecond, 1, func(c int, r *rand.Rand) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	// 4 clients, 1ms per op → ~4000 ops/s.
	if res.Throughput < 1000 || res.Throughput > 8000 {
		t.Fatalf("throughput = %.0f, expected around 4000", res.Throughput)
	}
	if res.Latency.Count() == 0 {
		t.Fatal("no latencies recorded")
	}
	if res.Latency.Mean() < 500*time.Microsecond {
		t.Fatalf("mean latency %v implausible for 1ms ops", res.Latency.Mean())
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
}

func TestRunClosedLoopCountsErrors(t *testing.T) {
	boom := errors.New("boom")
	res := RunClosedLoop(2, 0, 50*time.Millisecond, 1, func(c int, r *rand.Rand) error {
		time.Sleep(time.Millisecond)
		if c == 0 {
			return boom
		}
		return nil
	})
	if res.Errors == 0 {
		t.Fatal("errors not counted")
	}
	if res.Latency.Count() == 0 {
		t.Fatal("successful ops not measured")
	}
}

func TestRunFixedOps(t *testing.T) {
	calls := 0
	res := RunFixedOps(100, 1, func(r *rand.Rand) error {
		calls++
		return nil
	})
	if calls != 100 || res.Latency.Count() != 100 {
		t.Fatalf("calls=%d measured=%d", calls, res.Latency.Count())
	}
}

func TestRunFixedOpsErrors(t *testing.T) {
	res := RunFixedOps(10, 1, func(r *rand.Rand) error { return errors.New("x") })
	if res.Errors != 10 || res.Latency.Count() != 0 {
		t.Fatalf("res = %+v", res)
	}
}
