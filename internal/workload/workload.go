// Package workload generates the key sequences and records the
// benchmark harness drives through the store: uniform and zipfian key
// choices over configurable populations, the bounded key ranges of the
// paper's update-skew experiment (Figure 8), and closed-loop client
// execution with latency/throughput measurement.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vstore/internal/clock"
	"vstore/internal/metrics"
)

// wall is the load driver's time source. Workloads deliberately
// measure *real* latency and throughput, so this is the explicit
// wall clock, not an injected one.
var wall = clock.Wall

// KeyChooser picks keys for operations.
type KeyChooser interface {
	// Next returns the next key using the provided per-client random
	// source.
	Next(r *rand.Rand) string
}

// Uniform picks uniformly from N keys with the given prefix.
type Uniform struct {
	N      int
	Prefix string
}

// Next implements KeyChooser.
func (u Uniform) Next(r *rand.Rand) string {
	return fmt.Sprintf("%s%08d", u.Prefix, r.Intn(u.N))
}

// Zipf picks from N keys with zipfian skew (s > 1; larger = more
// skewed). The hottest key is index 0.
type Zipf struct {
	N      int
	S      float64
	Prefix string

	mu   sync.Mutex
	zips map[*rand.Rand]*rand.Zipf
}

// Next implements KeyChooser.
func (z *Zipf) Next(r *rand.Rand) string {
	z.mu.Lock()
	if z.zips == nil {
		z.zips = map[*rand.Rand]*rand.Zipf{}
	}
	zf := z.zips[r]
	if zf == nil {
		s := z.S
		if s <= 1 {
			s = 1.1
		}
		zf = rand.NewZipf(r, s, 1, uint64(z.N-1))
		z.zips[r] = zf
	}
	z.mu.Unlock()
	return fmt.Sprintf("%s%08d", z.Prefix, zf.Uint64())
}

// Range picks uniformly from the first Width keys of a population —
// the paper's Figure 8 workload, where narrowing Width concentrates
// all updates on fewer and fewer rows (Width 1 = a single row).
type Range struct {
	Width  int
	Prefix string
}

// Next implements KeyChooser.
func (g Range) Next(r *rand.Rand) string {
	if g.Width <= 1 {
		return fmt.Sprintf("%s%08d", g.Prefix, 0)
	}
	return fmt.Sprintf("%s%08d", g.Prefix, r.Intn(g.Width))
}

// Key formats the i-th key of a population, matching the choosers'
// format (for loaders).
func Key(prefix string, i int) string { return fmt.Sprintf("%s%08d", prefix, i) }

// Result summarizes a closed-loop run.
type Result struct {
	// Throughput is successful operations per second over the
	// measured window.
	Throughput float64
	// Latency histograms successful operation latencies.
	Latency *metrics.Histogram
	// Errors counts failed operations.
	Errors int64
	// Elapsed is the measured wall-clock window.
	Elapsed time.Duration
}

// RunClosedLoop executes op in a closed loop from `clients` goroutines
// for the given duration (after a warmup that is measured into
// neither throughput nor latency). Each client gets a deterministic
// random source derived from seed.
func RunClosedLoop(clients int, warmup, duration time.Duration, seed int64, op func(client int, r *rand.Rand) error) Result {
	if clients <= 0 {
		clients = 1
	}
	var (
		hist      = metrics.NewHistogram()
		errs      atomic.Int64
		succeeded atomic.Int64
		measuring atomic.Bool
		stop      atomic.Bool
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + int64(c)*7919))
			for !stop.Load() {
				start := wall.Now()
				err := op(c, r)
				if !measuring.Load() {
					continue
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				succeeded.Add(1)
				hist.Observe(wall.Now().Sub(start))
			}
		}(c)
	}
	wall.Sleep(warmup)
	measuring.Store(true)
	begin := wall.Now()
	wall.Sleep(duration)
	measuring.Store(false)
	elapsed := wall.Now().Sub(begin)
	stop.Store(true)
	wg.Wait()
	return Result{
		Throughput: float64(succeeded.Load()) / elapsed.Seconds(),
		Latency:    hist,
		Errors:     errs.Load(),
		Elapsed:    elapsed,
	}
}

// RunFixedOps executes exactly n operations from a single client and
// returns their latency profile — the paper's latency methodology
// ("we ran a single client until it had completed 100,000 requests").
func RunFixedOps(n int, seed int64, op func(r *rand.Rand) error) Result {
	hist := metrics.NewHistogram()
	r := rand.New(rand.NewSource(seed))
	var errs int64
	begin := wall.Now()
	for i := 0; i < n; i++ {
		start := wall.Now()
		if err := op(r); err != nil {
			errs++
			continue
		}
		hist.Observe(wall.Now().Sub(start))
	}
	elapsed := wall.Now().Sub(begin)
	return Result{
		Throughput: float64(hist.Count()) / elapsed.Seconds(),
		Latency:    hist,
		Errors:     errs,
		Elapsed:    elapsed,
	}
}
