package dvv

import (
	"bytes"
	"testing"
)

func TestDotIsZero(t *testing.T) {
	if !(Dot{}).IsZero() {
		t.Fatal("zero value must be the unstamped sentinel")
	}
	if (Dot{Node: 3, Seq: 1}).IsZero() {
		t.Fatal("stamped dot reported zero")
	}
	// Node 0 is a valid coordinator id; only Seq==0 means unstamped.
	if (Dot{Node: 0, Seq: 7}).IsZero() {
		t.Fatal("node-0 dot reported zero")
	}
}

func TestVVContains(t *testing.T) {
	cases := []struct {
		name string
		v    VV
		d    Dot
		want bool
	}{
		{"nil ctx contains nothing", nil, Dot{Node: 1, Seq: 1}, false},
		{"zero dot never contained", VV{1: 5}, Dot{}, false},
		{"below high-water", VV{1: 5}, Dot{Node: 1, Seq: 3}, true},
		{"at high-water", VV{1: 5}, Dot{Node: 1, Seq: 5}, true},
		{"above high-water", VV{1: 5}, Dot{Node: 1, Seq: 6}, false},
		{"other node", VV{1: 5}, Dot{Node: 2, Seq: 1}, false},
	}
	for _, c := range cases {
		if got := c.v.Contains(c.d); got != c.want {
			t.Errorf("%s: Contains(%v)=%v, want %v", c.name, c.d, got, c.want)
		}
	}
}

func TestVVDominates(t *testing.T) {
	cases := []struct {
		name string
		a, b VV
		want bool
	}{
		{"empty dominates empty", nil, nil, true},
		{"anything dominates empty", VV{1: 1}, nil, true},
		{"empty does not dominate nonempty", nil, VV{1: 1}, false},
		{"pointwise greater", VV{1: 5, 2: 3}, VV{1: 4, 2: 3}, true},
		{"missing node", VV{1: 5}, VV{1: 5, 2: 1}, false},
		{"incomparable", VV{1: 5}, VV{2: 5}, false},
		{"equal", VV{1: 2}, VV{1: 2}, true},
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("%s: %v.Dominates(%v)=%v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestJoin(t *testing.T) {
	if Join(nil, nil) != nil {
		t.Fatal("join of empties must stay nil (no metadata allocation)")
	}
	j := Join(VV{1: 3, 2: 1}, VV{1: 2, 3: 4})
	want := VV{1: 3, 2: 1, 3: 4}
	if !j.Equal(want) {
		t.Fatalf("join = %v, want %v", j, want)
	}
	// Join must not alias its inputs.
	in := VV{1: 3, 2: 1}
	j2 := Join(in, nil)
	j2[9] = 9
	if _, ok := in[9]; ok {
		t.Fatal("join aliased an input")
	}
}

func TestWithDot(t *testing.T) {
	base := VV{1: 3}
	v := base.WithDot(Dot{Node: 2, Seq: 7})
	if !v.Contains(Dot{Node: 2, Seq: 7}) || !v.Contains(Dot{Node: 1, Seq: 3}) {
		t.Fatalf("WithDot lost events: %v", v)
	}
	if base.Contains(Dot{Node: 2, Seq: 7}) {
		t.Fatal("WithDot mutated the receiver")
	}
	// A stale dot must not lower the high-water mark.
	v2 := VV{1: 5}.WithDot(Dot{Node: 1, Seq: 2})
	if v2[1] != 5 {
		t.Fatalf("stale dot lowered high-water mark: %v", v2)
	}
}

func TestAbsorb(t *testing.T) {
	if Absorb(nil, nil, Dot{}, Dot{}) != nil {
		t.Fatal("absorbing nothing must stay nil")
	}
	got := Absorb(VV{1: 2}, VV{2: 3}, Dot{Node: 1, Seq: 4}, Dot{Node: 3, Seq: 1})
	want := VV{1: 4, 2: 3, 3: 1}
	if !got.Equal(want) {
		t.Fatalf("absorb = %v, want %v", got, want)
	}
}

// TestSiblingDetection drives the canonical dotted-version-vector
// judgements: same-coordinator writes chain (the later context
// subsumes the earlier dot via the high-water mark), cross-coordinator
// unchained writes are siblings, and a context that has absorbed a dot
// is never concurrent with it again.
func TestSiblingDetection(t *testing.T) {
	stamp := func(node uint32, seq uint64) (Dot, VV) {
		d := Dot{Node: node, Seq: seq}
		return d, VV{node: seq}
	}
	d1, c1 := stamp(0, 1)
	d2, c2 := stamp(0, 2) // same coordinator, later
	d3, c3 := stamp(1, 1) // different coordinator, unchained

	if !c2.Contains(d1) {
		t.Fatal("later same-coordinator context must subsume the earlier dot")
	}
	if c1.Contains(d2) {
		t.Fatal("earlier context must not contain a later dot")
	}
	if c3.Contains(d1) || c1.Contains(d3) {
		t.Fatal("unchained cross-coordinator writes must not contain each other")
	}
	// After a merge absorbed both, neither is concurrent with the winner.
	merged := Absorb(c1, c3, d1, d3)
	if !merged.Contains(d1) || !merged.Contains(d3) {
		t.Fatalf("absorb dropped a dot: %v", merged)
	}
	_ = d2
}

func TestMetaRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		d    Dot
		ctx  VV
	}{
		{"zero", Dot{}, nil},
		{"dot only", Dot{Node: 3, Seq: 9}, nil},
		{"dot and ctx", Dot{Node: 1, Seq: 2}, VV{0: 4, 1: 2, 7: 1}},
		{"big values", Dot{Node: 1<<32 - 1, Seq: 1<<63 - 1}, VV{1<<32 - 1: 1 << 62}},
	}
	for _, c := range cases {
		buf := AppendMeta([]byte("prefix"), c.d, c.ctx)
		d, ctx, rest, err := ReadMeta(buf[len("prefix"):])
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if d != c.d || !ctx.Equal(c.ctx) || len(rest) != 0 {
			t.Fatalf("%s: round-trip (%v,%v) -> (%v,%v) rest=%d", c.name, c.d, c.ctx, d, ctx, len(rest))
		}
	}
}

func TestMetaDeterministicEncoding(t *testing.T) {
	// Map iteration order is random; the codec must sort. Identical
	// state must serialize byte-identically — durable replay equality
	// depends on it.
	ctx := VV{5: 1, 1: 2, 9: 3, 3: 4, 7: 5}
	first := AppendMeta(nil, Dot{Node: 1, Seq: 2}, ctx)
	for i := 0; i < 32; i++ {
		if got := AppendMeta(nil, Dot{Node: 1, Seq: 2}, ctx.Clone()); !bytes.Equal(got, first) {
			t.Fatalf("encoding not deterministic: %x vs %x", got, first)
		}
	}
}

func TestReadMetaCorrupt(t *testing.T) {
	for _, data := range [][]byte{
		{},                 // empty
		{0x80},             // truncated uvarint
		{1},                // missing seq
		{1, 1, 2, 1, 1},    // pair count 2, only one pair
		{1, 1, 1, 1, 0},    // ctx entry with seq 0
		{1, 1, 0xff, 0xff}, // absurd pair count vs remaining bytes
	} {
		if _, _, _, err := ReadMeta(data); err == nil {
			t.Errorf("ReadMeta(%x) accepted corrupt input", data)
		}
	}
}

// FuzzMetaRoundTrip checks that every decodable byte string re-encodes
// to an equivalent value, and that ReadMeta never panics on garbage.
func FuzzMetaRoundTrip(f *testing.F) {
	f.Add(AppendMeta(nil, Dot{}, nil))
	f.Add(AppendMeta(nil, Dot{Node: 2, Seq: 5}, VV{1: 1, 2: 5}))
	f.Add([]byte{0xff, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, ctx, rest, err := ReadMeta(data)
		if err != nil {
			return
		}
		reenc := AppendMeta(nil, d, ctx)
		d2, ctx2, rest2, err := ReadMeta(reenc)
		if err != nil {
			t.Fatalf("re-decode of re-encoding failed: %v", err)
		}
		if d2 != d || !ctx2.Equal(ctx) || len(rest2) != 0 {
			t.Fatalf("round-trip drift: (%v,%v) -> (%v,%v)", d, ctx, d2, ctx2)
		}
		_ = rest
	})
}
