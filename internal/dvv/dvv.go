// Package dvv implements dotted version vectors (Preguiça et al.,
// "Dotted Version Vectors: Logical Clocks for Optimistic Replication"),
// the causality metadata layered under the store's LWW cells.
//
// A Dot names one client write uniquely: the coordinator that accepted
// it and that coordinator's write sequence number. A VV (version
// vector) is a causal context: the set of dots an actor had observed,
// compressed to a per-node high-water mark — valid because each
// coordinator hands out its sequence numbers contiguously.
//
// The store keeps its deterministic LWW merge policy (timestamps
// decide the surviving value), but every cell additionally carries the
// dot of the write that produced its value and a context that absorbs
// the dots of every write the cell has causally subsumed or beaten.
// That turns the silent-clobber question decidable: two writes are
// concurrent siblings exactly when neither's context contains the
// other's dot, and a replica provably holds an acknowledged write when
// its surviving cell's dot-or-context dominates the write's dot.
//
// Canonical form: a stamped cell's context always contains its own
// dot. This keeps the cell-level merge idempotent (merging a cell with
// itself joins identical contexts) and makes "ctx dominates dot d"
// the single dominance test, with no special case for d being the
// cell's own dot.
package dvv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Dot uniquely identifies one write: the coordinator node that
// stamped it and that node's monotonically increasing write counter.
// Sequence numbers start at 1; the zero Dot means "unstamped" (cells
// written by internal view maintenance, or data from before dots were
// introduced).
type Dot struct {
	Node uint32
	Seq  uint64
}

// IsZero reports whether the dot is the "unstamped" sentinel.
func (d Dot) IsZero() bool { return d.Seq == 0 }

// String renders the dot for debugging output.
func (d Dot) String() string {
	if d.IsZero() {
		return "·"
	}
	return fmt.Sprintf("%d:%d", d.Node, d.Seq)
}

// VV is a version vector: per-node high-water marks of observed write
// sequence numbers. A nil VV is a valid empty context. VVs attached to
// cells are treated as immutable — every combining operation returns a
// fresh map.
type VV map[uint32]uint64

// Contains reports whether the context covers the dot. The zero dot is
// never contained: it names no write.
func (v VV) Contains(d Dot) bool {
	if d.IsZero() {
		return false
	}
	return v[d.Node] >= d.Seq
}

// Dominates reports whether v covers every event o covers (v ≥ o
// pointwise). Every VV dominates the empty context.
func (v VV) Dominates(o VV) bool {
	for n, s := range o {
		if v[n] < s {
			return false
		}
	}
	return true
}

// Equal reports whether the two contexts cover exactly the same
// events. Zero entries are normalized away by construction, so map
// equality is event-set equality.
func (v VV) Equal(o VV) bool {
	if len(v) != len(o) {
		return false
	}
	for n, s := range v {
		if o[n] != s {
			return false
		}
	}
	return true
}

// Clone returns an independent copy (nil stays nil).
func (v VV) Clone() VV {
	if v == nil {
		return nil
	}
	out := make(VV, len(v))
	for n, s := range v {
		out[n] = s
	}
	return out
}

// Join returns a fresh context covering everything a or b covers.
// Returns nil when both inputs are empty, keeping unstamped cells free
// of allocated metadata.
func Join(a, b VV) VV {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(VV, len(a)+len(b))
	for n, s := range a {
		out[n] = s
	}
	for n, s := range b {
		if out[n] < s {
			out[n] = s
		}
	}
	return out
}

// WithDot returns a fresh context additionally covering d. The zero
// dot adds nothing (and may return the receiver unchanged).
func (v VV) WithDot(d Dot) VV {
	if d.IsZero() {
		return v
	}
	out := v.Clone()
	if out == nil {
		out = make(VV, 1)
	}
	if out[d.Node] < d.Seq {
		out[d.Node] = d.Seq
	}
	return out
}

// add mutates v in place; only for maps the caller just allocated.
func (v VV) add(d Dot) {
	if d.IsZero() {
		return
	}
	if v[d.Node] < d.Seq {
		v[d.Node] = d.Seq
	}
}

// Absorb returns a fresh context covering a, b and both dots — the
// context a merged cell must carry so the losing write's dot stays
// provably subsumed. Nil when every input is empty/zero.
func Absorb(a, b VV, da, db Dot) VV {
	if len(a) == 0 && len(b) == 0 && da.IsZero() && db.IsZero() {
		return nil
	}
	out := Join(a, b)
	if out == nil {
		out = make(VV, 2)
	}
	out.add(da)
	out.add(db)
	return out
}

// --- Binary encoding -------------------------------------------------------

// ErrCorrupt reports malformed dot metadata.
var ErrCorrupt = errors.New("dvv: corrupt metadata")

// AppendMeta appends the binary encoding of (dot, ctx) to buf:
// uvarint node, uvarint seq, uvarint pair count, then the context
// pairs (uvarint node, uvarint seq) sorted by node id. The sort makes
// the encoding deterministic — byte-identical files for identical
// state, which durable replay equality depends on.
func AppendMeta(buf []byte, d Dot, ctx VV) []byte {
	buf = binary.AppendUvarint(buf, uint64(d.Node))
	buf = binary.AppendUvarint(buf, d.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(ctx)))
	if len(ctx) > 0 {
		nodes := make([]uint32, 0, len(ctx))
		for n := range ctx {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, n := range nodes {
			buf = binary.AppendUvarint(buf, uint64(n))
			buf = binary.AppendUvarint(buf, ctx[n])
		}
	}
	return buf
}

// ReadMeta decodes metadata written by AppendMeta and returns the
// remaining bytes.
func ReadMeta(data []byte) (Dot, VV, []byte, error) {
	var d Dot
	node, sz := binary.Uvarint(data)
	if sz <= 0 || node > 1<<32-1 {
		return Dot{}, nil, nil, ErrCorrupt
	}
	data = data[sz:]
	seq, sz := binary.Uvarint(data)
	if sz <= 0 {
		return Dot{}, nil, nil, ErrCorrupt
	}
	// seq 0 is the unstamped sentinel, always written as node 0; a
	// nonzero node with seq 0 is no encoding AppendMeta produces.
	if seq == 0 && node != 0 {
		return Dot{}, nil, nil, ErrCorrupt
	}
	data = data[sz:]
	d = Dot{Node: uint32(node), Seq: seq}
	n, sz := binary.Uvarint(data)
	if sz <= 0 || n > uint64(len(data)) {
		return Dot{}, nil, nil, ErrCorrupt
	}
	data = data[sz:]
	var ctx VV
	if n > 0 {
		ctx = make(VV, n)
		for i := uint64(0); i < n; i++ {
			cn, sz := binary.Uvarint(data)
			if sz <= 0 || cn > 1<<32-1 {
				return Dot{}, nil, nil, ErrCorrupt
			}
			data = data[sz:]
			cs, sz := binary.Uvarint(data)
			if sz <= 0 || cs == 0 {
				return Dot{}, nil, nil, ErrCorrupt
			}
			data = data[sz:]
			ctx[uint32(cn)] = cs
		}
	}
	return d, ctx, data, nil
}
