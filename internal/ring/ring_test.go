package ring

import (
	"fmt"
	"testing"
)

func ids(n int) []NodeID {
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

func TestReplicasDistinctAndStable(t *testing.T) {
	r := New(ids(4), 32)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		reps := r.ReplicasFor(key, 3)
		if len(reps) != 3 {
			t.Fatalf("got %d replicas", len(reps))
		}
		seen := map[NodeID]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("duplicate replica %d for %q", n, key)
			}
			seen[n] = true
		}
		// Placement must be deterministic.
		again := r.ReplicasFor(key, 3)
		for j := range reps {
			if reps[j] != again[j] {
				t.Fatalf("placement unstable for %q", key)
			}
		}
	}
}

func TestReplicasClampedToMembership(t *testing.T) {
	r := New(ids(2), 16)
	reps := r.ReplicasFor("k", 5)
	if len(reps) != 2 {
		t.Fatalf("got %d replicas from 2-node ring", len(reps))
	}
	if got := r.ReplicasFor("k", 0); got != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestEmptyRing(t *testing.T) {
	r := New(nil, 16)
	if got := r.ReplicasFor("k", 3); got != nil {
		t.Fatal("empty ring should return nil")
	}
	if r.Size() != 0 {
		t.Fatal("empty ring size")
	}
}

func TestBalance(t *testing.T) {
	r := New(ids(4), 128)
	counts := map[NodeID]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.ReplicasFor(fmt.Sprintf("key-%d", i), 1)[0]]++
	}
	want := keys / 4
	for n, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("node %d owns %d of %d keys; ring badly unbalanced: %v", n, c, keys, counts)
		}
	}
}

func TestAddRemove(t *testing.T) {
	r := New(ids(3), 32)
	before := map[string][]NodeID{}
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		before[keys[i]] = r.ReplicasFor(keys[i], 2)
	}
	r.Add(NodeID(3))
	if r.Size() != 4 {
		t.Fatalf("size after add = %d", r.Size())
	}
	moved := 0
	for _, k := range keys {
		after := r.ReplicasFor(k, 2)
		if after[0] != before[k][0] {
			moved++
		}
	}
	// Consistent hashing: only ~1/4 of primaries should move.
	if moved > len(keys)/2 {
		t.Fatalf("%d/%d primaries moved after adding one node", moved, len(keys))
	}
	r.Remove(NodeID(3))
	for _, k := range keys {
		after := r.ReplicasFor(k, 2)
		for i := range after {
			if after[i] != before[k][i] {
				t.Fatalf("placement did not revert after remove for %q", k)
			}
		}
	}
	// Removing an absent node is a no-op.
	r.Remove(NodeID(99))
	if r.Size() != 3 {
		t.Fatal("remove of absent node changed membership")
	}
}

func TestAddIdempotent(t *testing.T) {
	r := New(ids(2), 16)
	r.Add(NodeID(1))
	if r.Size() != 2 {
		t.Fatalf("duplicate add changed size to %d", r.Size())
	}
}

func TestNodesSorted(t *testing.T) {
	r := New([]NodeID{3, 1, 2}, 8)
	ns := r.Nodes()
	if len(ns) != 3 || ns[0] != 1 || ns[1] != 2 || ns[2] != 3 {
		t.Fatalf("Nodes = %v", ns)
	}
}

func BenchmarkReplicasFor(b *testing.B) {
	r := New(ids(16), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ReplicasFor(fmt.Sprintf("key-%d", i%4096), 3)
	}
}
