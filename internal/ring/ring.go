// Package ring implements consistent hashing with virtual nodes, the
// placement policy that decides which N servers replicate each record.
// The paper's system model only requires that "placement of a record's
// copies is determined by its key value"; we use the standard
// Dynamo/Cassandra token ring.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// NodeID identifies a server in the cluster.
type NodeID int32

// Hash64 is the ring's hash function, exposed so other components
// (dedicated propagators, anti-entropy bucketing) can partition work
// the same way the ring partitions data. FNV-1a alone distributes
// similar short keys poorly, so its output is passed through a
// splitmix64 finalizer for avalanche.
func Hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type token struct {
	hash uint64
	node NodeID
}

// Ring is a consistent-hash token ring. Safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	tokens []token
	nodes  map[NodeID]bool
}

// New builds a ring over the given nodes, placing vnodes virtual
// tokens per node (default 64 if vnodes <= 0).
func New(nodes []NodeID, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{vnodes: vnodes, nodes: map[NodeID]bool{}}
	for _, n := range nodes {
		r.addLocked(n)
	}
	sort.Slice(r.tokens, func(i, j int) bool { return less(r.tokens[i], r.tokens[j]) })
	return r
}

func less(a, b token) bool {
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return a.node < b.node
}

func (r *Ring) addLocked(n NodeID) {
	if r.nodes[n] {
		return
	}
	r.nodes[n] = true
	for v := 0; v < r.vnodes; v++ {
		r.tokens = append(r.tokens, token{hash: Hash64(fmt.Sprintf("node-%d-vnode-%d", n, v)), node: n})
	}
}

// Add inserts a node (with its virtual tokens) into the ring.
func (r *Ring) Add(n NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addLocked(n)
	sort.Slice(r.tokens, func(i, j int) bool { return less(r.tokens[i], r.tokens[j]) })
}

// Remove deletes a node from the ring.
func (r *Ring) Remove(n NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[n] {
		return
	}
	delete(r.nodes, n)
	kept := r.tokens[:0]
	for _, t := range r.tokens {
		if t.node != n {
			kept = append(kept, t)
		}
	}
	r.tokens = kept
}

// Nodes returns the current membership, sorted.
func (r *Ring) Nodes() []NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]NodeID, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the number of member nodes.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// ReplicasFor returns the n distinct nodes responsible for key, in
// ring-walk order starting at the key's token. The first node is the
// "primary" only in the sense of walk order — the system is
// multi-master and all replicas are equal. If n exceeds the member
// count, all members are returned.
func (r *Ring) ReplicasFor(key string, n int) []NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.tokens) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := Hash64(key)
	start := sort.Search(len(r.tokens), func(i int) bool { return r.tokens[i].hash >= h })
	out := make([]NodeID, 0, n)
	seen := make(map[NodeID]bool, n)
	for i := 0; len(out) < n && i < len(r.tokens); i++ {
		t := r.tokens[(start+i)%len(r.tokens)]
		if !seen[t.node] {
			seen[t.node] = true
			out = append(out, t.node)
		}
	}
	return out
}
