// Package session implements the session guarantee of Section V
// (Definition 4): within a session, a Get on a view observes a view
// state at least as late as the one produced by propagating the
// session's own earlier base-table updates.
//
// The mechanism is the paper's: all requests of a session go through
// one coordinator; the coordinator associates every pending view
// propagation with the session of the base update that triggered it,
// and blocks the session's view Gets until those propagations
// complete. View maintenance itself stays fully asynchronous — the
// guarantee adds read-side blocking only, and only for the session's
// own writes.
package session

import (
	"context"
	"sync"
	"sync/atomic"

	"vstore/internal/trace"
)

// Tracker manages the sessions of one coordinator.
type Tracker struct {
	mu       sync.Mutex
	sessions map[int64]*Session
	nextID   atomic.Int64

	stats TrackerStats
}

// TrackerStats count tracker activity.
type TrackerStats struct {
	Started atomic.Int64
	Ended   atomic.Int64
	Waits   atomic.Int64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{sessions: map[int64]*Session{}}
}

// Stats exposes the counters.
func (t *Tracker) Stats() *TrackerStats { return &t.stats }

// Begin creates a session.
func (t *Tracker) Begin() *Session {
	s := &Session{
		id:      t.nextID.Add(1),
		tracker: t,
		pending: map[string]map[int64]chan struct{}{},
	}
	t.mu.Lock()
	t.sessions[s.id] = s
	t.mu.Unlock()
	t.stats.Started.Add(1)
	return s
}

// Active reports the number of open sessions.
func (t *Tracker) Active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// Session is one client's sequence of operations.
type Session struct {
	id      int64
	tracker *Tracker

	mu     sync.Mutex
	nextOp int64
	closed bool
	// pending maps view name → op token → completion channel for the
	// session's base updates whose propagation into that view has not
	// finished.
	pending map[string]map[int64]chan struct{}
}

// ID returns the session identifier.
func (s *Session) ID() int64 { return s.id }

// Register notes that a base update issued in this session has a
// propagation to view in flight. The returned function must be called
// exactly once when the propagation completes (successfully or not —
// an abandoned propagation must not block the session forever).
func (s *Session) Register(view string) (done func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return func() {}
	}
	s.nextOp++
	op := s.nextOp
	ch := make(chan struct{})
	if s.pending[view] == nil {
		s.pending[view] = map[int64]chan struct{}{}
	}
	s.pending[view][op] = ch
	var once sync.Once
	return func() {
		once.Do(func() {
			close(ch)
			s.mu.Lock()
			if m := s.pending[view]; m != nil {
				delete(m, op)
				if len(m) == 0 {
					delete(s.pending, view)
				}
			}
			s.mu.Unlock()
		})
	}
}

// WaitView blocks until every propagation registered for view before
// this call has completed — exactly Definition 4's precondition for a
// session view read. Reads of views the session never wrote return
// immediately.
func (s *Session) WaitView(ctx context.Context, view string) error {
	s.mu.Lock()
	chans := make([]chan struct{}, 0, len(s.pending[view]))
	for _, ch := range s.pending[view] {
		chans = append(chans, ch)
	}
	s.mu.Unlock()
	if len(chans) == 0 {
		return nil
	}
	s.tracker.stats.Waits.Add(1)
	sp := trace.FromContext(ctx).Child("session.wait")
	sp.SetAttr("view", view)
	defer sp.Finish()
	for _, ch := range chans {
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// PendingFor reports how many of the session's propagations into view
// are still in flight.
func (s *Session) PendingFor(view string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending[view])
}

// End closes the session. Outstanding completion callbacks remain
// harmless no-ops.
func (s *Session) End() {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.pending = map[string]map[int64]chan struct{}{}
	s.mu.Unlock()
	if alreadyClosed {
		return
	}
	s.tracker.mu.Lock()
	delete(s.tracker.sessions, s.id)
	s.tracker.mu.Unlock()
	s.tracker.stats.Ended.Add(1)
}
