package session

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestWaitViewNoWrites(t *testing.T) {
	tr := NewTracker()
	s := tr.Begin()
	defer s.End()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.WaitView(ctx, "v"); err != nil {
		t.Fatalf("empty session wait blocked: %v", err)
	}
}

func TestWaitViewBlocksUntilDone(t *testing.T) {
	tr := NewTracker()
	s := tr.Begin()
	defer s.End()
	done := s.Register("v")
	released := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.WaitView(ctx, "v"); err != nil {
			t.Errorf("WaitView: %v", err)
		}
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("WaitView returned before propagation completed")
	case <-time.After(30 * time.Millisecond):
	}
	done()
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("WaitView never released after completion")
	}
	if tr.Stats().Waits.Load() != 1 {
		t.Fatalf("waits = %d", tr.Stats().Waits.Load())
	}
}

func TestWaitViewScopedToView(t *testing.T) {
	tr := NewTracker()
	s := tr.Begin()
	defer s.End()
	_ = s.Register("other-view") // never completed
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.WaitView(ctx, "v"); err != nil {
		t.Fatal("wait on unrelated view blocked")
	}
}

func TestWaitViewOnlyCoversPriorOps(t *testing.T) {
	// Definition 4 covers operations preceding the Get. A propagation
	// registered after the wait snapshot must not block it.
	tr := NewTracker()
	s := tr.Begin()
	defer s.End()
	d1 := s.Register("v")
	waitStarted := make(chan struct{})
	released := make(chan struct{})
	go func() {
		close(waitStarted)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.WaitView(ctx, "v")
		close(released)
	}()
	<-waitStarted
	time.Sleep(10 * time.Millisecond)
	_ = s.Register("v") // later op, never completed
	d1()
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("later registration blocked an earlier wait")
	}
}

func TestWaitViewContextCancel(t *testing.T) {
	tr := NewTracker()
	s := tr.Begin()
	defer s.End()
	_ = s.Register("v")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.WaitView(ctx, "v"); err == nil {
		t.Fatal("cancelled wait returned nil")
	}
}

func TestDoneIdempotent(t *testing.T) {
	tr := NewTracker()
	s := tr.Begin()
	defer s.End()
	done := s.Register("v")
	done()
	done() // must not panic or double-free
	if s.PendingFor("v") != 0 {
		t.Fatal("pending not cleared")
	}
}

func TestEndSession(t *testing.T) {
	tr := NewTracker()
	s := tr.Begin()
	done := s.Register("v")
	s.End()
	if tr.Active() != 0 {
		t.Fatalf("active = %d after End", tr.Active())
	}
	done() // completion after End is a no-op
	// Register after End returns a no-op.
	post := s.Register("v")
	post()
	if s.PendingFor("v") != 0 {
		t.Fatal("closed session accumulated pending ops")
	}
	s.End() // double End is safe
	if tr.Stats().Ended.Load() != 1 {
		t.Fatalf("ended = %d", tr.Stats().Ended.Load())
	}
}

func TestConcurrentSessions(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := tr.Begin()
			defer s.End()
			for j := 0; j < 50; j++ {
				done := s.Register("v")
				go done()
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				if err := s.WaitView(ctx, "v"); err != nil {
					t.Errorf("wait: %v", err)
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	if tr.Active() != 0 {
		t.Fatalf("sessions leaked: %d", tr.Active())
	}
}
