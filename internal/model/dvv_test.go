package model

import (
	"testing"

	"vstore/internal/dvv"
)

// stamped builds a canonical-form dotted cell: the context contains the
// cell's own dot, the way coordinators stamp client writes.
func stamped(val string, ts int64, node uint32, seq uint64) Cell {
	return Cell{
		Value: []byte(val),
		TS:    ts,
		Dot:   dvv.Dot{Node: node, Seq: seq},
		Ctx:   dvv.VV{node: seq},
	}
}

func TestConcurrentJudgement(t *testing.T) {
	a := stamped("a", 10, 0, 1)
	b := stamped("b", 11, 1, 1) // different coordinator, unchained
	c := stamped("c", 12, 0, 2) // same coordinator as a, later

	cases := []struct {
		name string
		x, y Cell
		want bool
	}{
		{"cross-coordinator unchained", a, b, true},
		{"same-coordinator chained", a, c, false},
		{"self", a, a, false},
		{"undotted vs dotted", Cell{Value: []byte("v"), TS: 5}, a, false},
		{"both undotted", Cell{Value: []byte("v"), TS: 5}, Cell{Value: []byte("w"), TS: 6}, false},
	}
	for _, tc := range cases {
		if got := Concurrent(tc.x, tc.y); got != tc.want {
			t.Errorf("%s: Concurrent=%v, want %v", tc.name, got, tc.want)
		}
		if got := Concurrent(tc.y, tc.x); got != tc.want {
			t.Errorf("%s (swapped): Concurrent=%v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMergeAbsorbsLoserDot is the property the causal-convergence
// oracle leans on: whatever cell survives a merge must dominate both
// inputs' dots, so an acknowledged write is provably subsumed rather
// than silently clobbered.
func TestMergeAbsorbsLoserDot(t *testing.T) {
	a := stamped("a", 10, 0, 3)
	b := stamped("b", 11, 1, 5)
	m := Merge(a, b)
	if string(m.Value) != "b" {
		t.Fatalf("LWW winner changed: %q", m.Value)
	}
	for _, d := range []dvv.Dot{a.Dot, b.Dot} {
		if m.Dot != d && !m.Ctx.Contains(d) {
			t.Fatalf("merged cell (dot %v, ctx %v) does not dominate input dot %v", m.Dot, m.Ctx, d)
		}
	}
	// Merge with an undotted cell must not invent or lose metadata.
	plain := Cell{Value: []byte("p"), TS: 20}
	m2 := Merge(m, plain)
	if string(m2.Value) != "p" || !m2.Ctx.Contains(a.Dot) || !m2.Ctx.Contains(b.Dot) {
		t.Fatalf("undotted winner lost absorbed dots: %+v", m2)
	}
}

func TestMergeIdempotentWithDots(t *testing.T) {
	a := stamped("a", 10, 2, 7)
	m := Merge(a, a)
	if !m.Equal(a) || m.Dot != a.Dot || !m.Ctx.Equal(a.Ctx) {
		t.Fatalf("self-merge changed the cell: %+v vs %+v", m, a)
	}
}

func TestMergeCommutativeWithDots(t *testing.T) {
	a := stamped("a", 10, 0, 1)
	b := stamped("b", 10, 1, 1) // timestamp tie → value tie-break
	ab, ba := Merge(a, b), Merge(b, a)
	if !ab.Equal(ba) || ab.Dot != ba.Dot || !ab.Ctx.Equal(ba.Ctx) {
		t.Fatalf("merge not commutative: %+v vs %+v", ab, ba)
	}
}

// TestRowDigestSensitiveToMetadata: two replicas holding the same
// value/timestamp but different causal contexts have NOT converged —
// the digest must expose that so anti-entropy repairs it.
func TestRowDigestSensitiveToMetadata(t *testing.T) {
	row1 := Row{"c": stamped("v", 10, 0, 1)}
	cell := stamped("v", 10, 0, 1)
	cell.Ctx = dvv.VV{0: 1, 1: 4} // absorbed an extra write
	row2 := Row{"c": cell}
	if RowDigest(row1) == RowDigest(row2) {
		t.Fatal("digest blind to context divergence")
	}
	row3 := Row{"c": stamped("v", 10, 1, 1)}
	if RowDigest(row1) == RowDigest(row3) {
		t.Fatal("digest blind to dot divergence")
	}
	undotted := Row{"c": {Value: []byte("v"), TS: 10}}
	if RowDigest(undotted) == RowDigest(row1) {
		t.Fatal("digest blind to presence of metadata")
	}
}
