// Package model defines the core data model shared by every layer of
// the store: cells, timestamps, last-writer-wins (LWW) merge semantics,
// tombstones, and the order-preserving composite encodings used for
// (row, column) storage keys and for the qualified column names that
// materialized views use to pack several base rows into one view row.
//
// The model follows Section II of Jin, Liu and Salem, "Materialized
// Views for Eventually Consistent Record Stores": a table maps a key
// and a column name to a cell; each cell holds a value and a
// client-supplied timestamp; deletes write tombstones; and all updates
// to a cell are totally ordered by timestamp so that every replica
// converges to the same winner.
package model

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"vstore/internal/dvv"
)

// NullTS is the timestamp associated with a cell that has never been
// written. The paper specifies that a NULL timestamp is smaller than
// all non-NULL timestamps.
const NullTS int64 = math.MinInt64

// Cell is the unit of storage: the value of one column of one record,
// together with its timestamp. A tombstone records a deletion; it
// keeps its timestamp so that the deletion wins over older writes and
// loses to newer ones.
//
// Beyond the paper's (value, timestamp) pair, a cell carries dotted-
// version-vector metadata: Dot names the client write that produced
// the value (zero for internal view-maintenance writes and legacy
// data), and Ctx is the causal context — every dot this cell has
// subsumed through merges, always including its own (the canonical
// form dvv documents). Timestamps still decide the surviving value
// (the deterministic LWW merge policy is unchanged); the metadata
// makes concurrent sibling writes detectable instead of silently
// clobbered, and lets the causal-convergence oracle prove every
// acknowledged write survives somewhere in each replica's state.
type Cell struct {
	Value     []byte
	TS        int64
	Tombstone bool
	Dot       dvv.Dot
	Ctx       dvv.VV
}

// NullCell is the cell returned for reads of never-written cells.
var NullCell = Cell{TS: NullTS}

// IsNull reports whether the cell represents "no value": either it was
// never written or the latest write was a deletion.
func (c Cell) IsNull() bool {
	return c.TS == NullTS || c.Tombstone
}

// Exists reports whether the cell has ever been written (even if the
// latest write is a tombstone).
func (c Cell) Exists() bool { return c.TS != NullTS }

// String renders the cell for debugging output.
func (c Cell) String() string {
	switch {
	case c.TS == NullTS:
		return "<null>"
	case c.Tombstone:
		return fmt.Sprintf("<tombstone @%d>", c.TS)
	default:
		return fmt.Sprintf("%q @%d", c.Value, c.TS)
	}
}

// Equal reports whether two cells are identical in value, timestamp
// and tombstone flag.
func (c Cell) Equal(o Cell) bool {
	return c.TS == o.TS && c.Tombstone == o.Tombstone && bytes.Equal(c.Value, o.Value)
}

// Wins reports whether c supersedes old under last-writer-wins.
// Ordering is primarily by timestamp. Ties are broken
// deterministically so that all replicas pick the same winner
// regardless of arrival order: a tombstone beats a live value at the
// same timestamp, and between two live values the lexicographically
// larger value wins (the rule Cassandra uses).
func (c Cell) Wins(old Cell) bool {
	if c.TS != old.TS {
		return c.TS > old.TS
	}
	if c.Tombstone != old.Tombstone {
		return c.Tombstone
	}
	return bytes.Compare(c.Value, old.Value) > 0
}

// Merge returns the LWW winner of a and b; the winner's causal
// context additionally absorbs the loser's dot and context, so a
// merged cell keeps the proof that the losing write was considered.
// Merge remains commutative, associative and idempotent — contexts
// join as a lattice and canonical cells already contain their own dot
// — which is what makes replica state a join-semilattice and
// guarantees convergence under anti-entropy.
func Merge(a, b Cell) Cell {
	w, l := a, b
	if b.Wins(a) {
		w, l = b, a
	}
	if l.Dot.IsZero() && len(l.Ctx) == 0 {
		return w // nothing to absorb: the zero-metadata fast path
	}
	if (l.Dot.IsZero() || w.Ctx.Contains(l.Dot)) && w.Ctx.Dominates(l.Ctx) {
		return w // loser already subsumed; keep the winner allocation-free
	}
	w.Ctx = dvv.Absorb(w.Ctx, l.Ctx, w.Dot, l.Dot)
	return w
}

// Concurrent reports whether the two cells were produced by causally
// concurrent client writes: both are dotted, by different dots, and
// neither write's context had observed the other. Unstamped cells
// (internal writes, legacy data) are never reported concurrent.
func Concurrent(a, b Cell) bool {
	if a.Dot.IsZero() || b.Dot.IsZero() || a.Dot == b.Dot {
		return false
	}
	return !a.Ctx.Contains(b.Dot) && !b.Ctx.Contains(a.Dot)
}

// StripDot removes the dotted-version-vector metadata from the cell,
// in place. This is THE central strip for derived writes: dots name
// client base-table writes, and a view/backfill/propagation cell
// copied from a dotted base cell is derived state, not a causal event
// — carrying the dot over would make two view rows derived from
// concurrent base writes look like sibling view writes and
// double-count them (DESIGN.md §11). The dotcheck pass enforces that
// derived-write paths strip through here rather than zeroing fields
// inline, so the strip discipline has one auditable implementation.
func (c *Cell) StripDot() {
	c.Dot = dvv.Dot{}
	c.Ctx = nil
}

// StripDots strips the dot metadata from every cell of updates, in
// place — the batch form of Cell.StripDot for a derived write about to
// be forwarded whole.
func StripDots(updates []ColumnUpdate) {
	for i := range updates {
		updates[i].Cell.StripDot()
	}
}

// ColumnUpdate names one column and the cell to write into it. A Put
// request carries one or more of these.
type ColumnUpdate struct {
	Column string
	Cell   Cell
}

// Update is a convenience constructor for a live-value column update.
func Update(column string, value []byte, ts int64) ColumnUpdate {
	return ColumnUpdate{Column: column, Cell: Cell{Value: value, TS: ts}}
}

// Deletion is a convenience constructor for a tombstone column update.
func Deletion(column string, ts int64) ColumnUpdate {
	return ColumnUpdate{Column: column, Cell: Cell{TS: ts, Tombstone: true}}
}

// Row is a materialized set of named cells, the result of reading a
// record.
type Row map[string]Cell

// Clone returns a deep-enough copy of the row (cells share value
// slices, which are treated as immutable throughout the store).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// --- Composite storage-key encoding -------------------------------------
//
// The storage engine keeps one entry per (row key, column) pair. The
// two strings are packed into a single []byte key such that:
//
//   - the encoding is injective (no two pairs collide), and
//   - all columns of one row are contiguous under lexicographic order,
//     so a row read is a prefix scan.
//
// We length-prefix the row key with a uvarint. All columns of a given
// row share the exact prefix uvarint(len(row)) || row, and no other
// row can produce that prefix.

// EncodeKey packs a (row, column) pair into a storage key.
func EncodeKey(row, column string) []byte {
	buf := make([]byte, 0, len(row)+len(column)+binary.MaxVarintLen32)
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	buf = append(buf, row...)
	buf = append(buf, column...)
	return buf
}

// AppendKey appends the storage key of (row, column) to dst and
// returns the extended slice, letting hot read paths reuse one key
// buffer across lookups.
func AppendKey(dst []byte, row, column string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	dst = append(dst, row...)
	dst = append(dst, column...)
	return dst
}

// RowPrefix returns the storage-key prefix shared by every column of
// the given row and by no other row.
func RowPrefix(row string) []byte {
	buf := make([]byte, 0, len(row)+binary.MaxVarintLen32)
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	buf = append(buf, row...)
	return buf
}

// RowDigest summarizes a row's existing cells (column names, values,
// timestamps, tombstone flags) into one 64-bit value. Two rows with
// equal digests hold, with overwhelming probability, identical
// existing cells — which is exactly the check digest-based quorum
// reads need, because LWW-merging identical rows is a no-op. Cells
// that do not Exist (NullCell placeholders) are skipped so a replica
// that padded missing columns digests the same as one that omitted
// them. Per-column hashes are folded with XOR, making the digest
// independent of map iteration order.
func RowDigest(r Row) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var digest uint64 = offset64
	for col, c := range r {
		if !c.Exists() {
			continue
		}
		h := uint64(offset64)
		for i := 0; i < len(col); i++ {
			h ^= uint64(col[i])
			h *= prime64
		}
		h ^= 0xff // separator between name and payload
		h *= prime64
		for _, b := range c.Value {
			h ^= uint64(b)
			h *= prime64
		}
		for shift := 0; shift < 64; shift += 8 {
			h ^= uint64(uint8(uint64(c.TS) >> shift))
			h *= prime64
		}
		if c.Tombstone {
			h ^= 1
			h *= prime64
		}
		// Dot metadata must participate: two replicas holding the same
		// (value, TS) winner but diverged causal contexts have NOT
		// converged — digest reads must fall back to a full merge and
		// anti-entropy must exchange the entries so the contexts join.
		h ^= mix64(mix64(uint64(c.Dot.Node)) + c.Dot.Seq)
		h *= prime64
		var ctxFold uint64
		for n, s := range c.Ctx {
			// Per-pair mix folded with XOR: order-independent, so map
			// iteration order cannot perturb the digest.
			ctxFold ^= mix64(mix64(uint64(n)) + s)
		}
		h ^= ctxFold
		h *= prime64
		// splitmix64-style finalization before the XOR fold so
		// per-column hash structure cannot cancel out.
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		digest ^= h ^ (h >> 31)
	}
	return digest
}

// mix64 is a splitmix64 finalizer round, used to spread structured
// integers (dots, context pairs) before they are folded into digests.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ErrBadKey is returned when decoding a malformed storage key.
var ErrBadKey = errors.New("model: malformed storage key")

// DecodeKey splits a storage key back into its (row, column) pair.
func DecodeKey(key []byte) (row, column string, err error) {
	n, sz := binary.Uvarint(key)
	if sz <= 0 || uint64(len(key)-sz) < n {
		return "", "", ErrBadKey
	}
	body := key[sz:]
	return string(body[:n]), string(body[n:]), nil
}

// --- Qualified column names ---------------------------------------------
//
// A versioned view keyed by view key may hold several base rows under
// one view row (several base rows can share a view key). Following the
// wide-row layout of the paper's Cassandra prototype, the cells of base
// row kB inside a view row use qualified column names that pack
// (kB, column). The same uvarint framing keeps the mapping injective.

// Qualify packs a (base key, column) pair into a single column name.
func Qualify(baseKey, column string) string {
	return string(EncodeKey(baseKey, column))
}

// QualifyPrefix returns the column-name prefix of all cells belonging
// to base key baseKey within a view row.
func QualifyPrefix(baseKey string) string {
	return string(RowPrefix(baseKey))
}

// Unqualify splits a qualified column name back into (base key,
// column). ok is false if the name is not a valid qualified name.
func Unqualify(name string) (baseKey, column string, ok bool) {
	b, c, err := DecodeKey([]byte(name))
	if err != nil {
		return "", "", false
	}
	return b, c, true
}

// --- Version sets ---------------------------------------------------------

// VersionSet accumulates the distinct cell versions observed for one
// cell across replicas. Algorithm 1 of the paper relies on the
// coordinator collecting *all* distinct view-key versions it sees (not
// just the newest) so that update propagation has candidate guesses.
type VersionSet struct {
	cells []Cell
}

// Add inserts a cell version if an identical version is not already
// present. It returns true if the set changed.
func (vs *VersionSet) Add(c Cell) bool {
	for _, e := range vs.cells {
		if e.Equal(c) {
			return false
		}
	}
	vs.cells = append(vs.cells, c)
	return true
}

// AddAll inserts every cell of other.
func (vs *VersionSet) AddAll(cells []Cell) {
	for _, c := range cells {
		vs.Add(c)
	}
}

// Cells returns the distinct versions collected so far, newest first.
// The newest-first order is the natural retry order for propagation
// guesses: the newest version is the most likely to already be in the
// view or to be the final value.
func (vs *VersionSet) Cells() []Cell {
	out := make([]Cell, len(vs.cells))
	copy(out, vs.cells)
	// Insertion sort by Wins order, newest first; the set is tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Wins(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Len reports the number of distinct versions collected.
func (vs *VersionSet) Len() int { return len(vs.cells) }

// Latest returns the LWW winner among the collected versions, or
// NullCell if the set is empty.
func (vs *VersionSet) Latest() Cell {
	best := NullCell
	for _, c := range vs.cells {
		best = Merge(best, c)
	}
	return best
}

// Entry pairs a storage key (the composite (row, column) encoding)
// with its cell. Sorted runs of entries are the currency exchanged
// between the memtable, sstables and compaction.
type Entry struct {
	Key  []byte
	Cell Cell
}
