package model

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCellNullness(t *testing.T) {
	if !NullCell.IsNull() {
		t.Fatal("NullCell should be null")
	}
	if NullCell.Exists() {
		t.Fatal("NullCell should not exist")
	}
	c := Cell{Value: []byte("x"), TS: 1}
	if c.IsNull() || !c.Exists() {
		t.Fatal("live cell misclassified")
	}
	d := Cell{TS: 2, Tombstone: true}
	if !d.IsNull() || !d.Exists() {
		t.Fatal("tombstone misclassified: should be null but existing")
	}
}

func TestWinsTimestampOrder(t *testing.T) {
	older := Cell{Value: []byte("a"), TS: 1}
	newer := Cell{Value: []byte("b"), TS: 2}
	if !newer.Wins(older) {
		t.Fatal("newer timestamp must win")
	}
	if older.Wins(newer) {
		t.Fatal("older timestamp must lose")
	}
	if !newer.Wins(NullCell) {
		t.Fatal("any write beats the null cell")
	}
}

func TestWinsTieBreaks(t *testing.T) {
	a := Cell{Value: []byte("aaa"), TS: 5}
	b := Cell{Value: []byte("bbb"), TS: 5}
	if !b.Wins(a) || a.Wins(b) {
		t.Fatal("at equal timestamps the larger value must win")
	}
	tomb := Cell{TS: 5, Tombstone: true}
	if !tomb.Wins(b) || b.Wins(tomb) {
		t.Fatal("at equal timestamps a tombstone must beat a value")
	}
	// A cell never wins against itself: Wins is a strict order.
	if a.Wins(a) || tomb.Wins(tomb) {
		t.Fatal("Wins must be irreflexive")
	}
}

func TestMergeDeterministic(t *testing.T) {
	a := Cell{Value: []byte("x"), TS: 3}
	b := Cell{TS: 7, Tombstone: true}
	got := Merge(a, b)
	if !got.Equal(b) {
		t.Fatalf("Merge picked %v, want %v", got, b)
	}
	if !Merge(b, a).Equal(got) {
		t.Fatal("Merge must be commutative")
	}
}

// genCell produces a small random cell; timestamps are drawn from a
// narrow range so that ties actually occur during property testing.
func genCell(r *rand.Rand) Cell {
	if r.Intn(10) == 0 {
		return NullCell
	}
	c := Cell{TS: int64(r.Intn(4))}
	if r.Intn(4) == 0 {
		c.Tombstone = true
	} else {
		c.Value = []byte{byte('a' + r.Intn(3))}
	}
	return c
}

type cellTriple struct{ A, B, C Cell }

func (cellTriple) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(cellTriple{genCell(r), genCell(r), genCell(r)})
}

// The LWW merge must form a semilattice: commutative, associative,
// idempotent. This is the algebraic property that makes every replica
// converge to the same state no matter the delivery order.
func TestMergeSemilatticeProperties(t *testing.T) {
	comm := func(tr cellTriple) bool {
		return Merge(tr.A, tr.B).Equal(Merge(tr.B, tr.A))
	}
	assoc := func(tr cellTriple) bool {
		return Merge(Merge(tr.A, tr.B), tr.C).Equal(Merge(tr.A, Merge(tr.B, tr.C)))
	}
	idem := func(tr cellTriple) bool {
		return Merge(tr.A, tr.A).Equal(tr.A)
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(comm, cfg); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Errorf("associativity: %v", err)
	}
	if err := quick.Check(idem, cfg); err != nil {
		t.Errorf("idempotence: %v", err)
	}
}

// Applying a permutation of the same updates must yield the same final
// cell: convergence under reordering.
func TestMergeOrderIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		cells := make([]Cell, 6)
		for i := range cells {
			cells[i] = genCell(r)
		}
		apply := func(order []int) Cell {
			acc := NullCell
			for _, i := range order {
				acc = Merge(acc, cells[i])
			}
			return acc
		}
		base := apply([]int{0, 1, 2, 3, 4, 5})
		perm := r.Perm(6)
		if got := apply(perm); !got.Equal(base) {
			t.Fatalf("order %v produced %v, want %v", perm, got, base)
		}
	}
}

func TestEncodeDecodeKeyRoundTrip(t *testing.T) {
	cases := []struct{ row, col string }{
		{"", ""},
		{"k", ""},
		{"", "c"},
		{"user:42", "name"},
		{"with\x00null", "col\x00umn"},
		{"日本語", "列"},
	}
	for _, c := range cases {
		enc := EncodeKey(c.row, c.col)
		row, col, err := DecodeKey(enc)
		if err != nil {
			t.Fatalf("DecodeKey(%q/%q): %v", c.row, c.col, err)
		}
		if row != c.row || col != c.col {
			t.Fatalf("round trip (%q,%q) -> (%q,%q)", c.row, c.col, row, col)
		}
	}
}

func TestDecodeKeyMalformed(t *testing.T) {
	if _, _, err := DecodeKey([]byte{0xFF}); err == nil {
		t.Fatal("want error for truncated uvarint")
	}
	// Length prefix claims more bytes than available.
	bad := []byte{10, 'a', 'b'}
	if _, _, err := DecodeKey(bad); err == nil {
		t.Fatal("want error for short body")
	}
	if _, _, err := DecodeKey(nil); err == nil {
		t.Fatal("want error for empty key")
	}
}

// Distinct (row, column) pairs must encode to distinct keys, and all
// columns of a row must share RowPrefix(row) while no other row's
// columns may.
func TestEncodeKeyInjectivePrefixSafe(t *testing.T) {
	f := func(r1, c1, r2, c2 string) bool {
		k1 := EncodeKey(r1, c1)
		k2 := EncodeKey(r2, c2)
		if r1 == r2 && c1 == c2 {
			return bytes.Equal(k1, k2)
		}
		if bytes.Equal(k1, k2) {
			return false
		}
		p1 := RowPrefix(r1)
		hasPrefix := bytes.HasPrefix(k2, p1)
		// k2 carries prefix of row r1 iff it belongs to row r1.
		return hasPrefix == (r1 == r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Adjacent rows must not interleave: every key of row A must sort
// strictly before or after every key of a different row B whenever the
// encoded prefixes differ, guaranteeing contiguous prefix scans.
func TestRowKeysContiguous(t *testing.T) {
	rows := []string{"", "a", "aa", "ab", "b", "longer-row-key", "a\x00b"}
	cols := []string{"", "c1", "c2", "zzz"}
	type entry struct {
		key []byte
		row string
	}
	var all []entry
	for _, r := range rows {
		for _, c := range cols {
			all = append(all, entry{EncodeKey(r, c), r})
		}
	}
	// Sort lexicographically.
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if bytes.Compare(all[j].key, all[i].key) < 0 {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	seen := map[string]bool{}
	last := ""
	for _, e := range all {
		if e.row != last {
			if seen[e.row] {
				t.Fatalf("row %q appears in two separate runs", e.row)
			}
			seen[e.row] = true
			last = e.row
		}
	}
}

func TestQualifyRoundTrip(t *testing.T) {
	f := func(base, col string) bool {
		q := Qualify(base, col)
		b, c, ok := Unqualify(q)
		return ok && b == base && c == col
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := Unqualify("\xff\xff"); ok {
		t.Fatal("Unqualify must reject malformed names")
	}
}

func TestVersionSetDedup(t *testing.T) {
	var vs VersionSet
	a := Cell{Value: []byte("a"), TS: 1}
	b := Cell{Value: []byte("b"), TS: 2}
	if !vs.Add(a) || !vs.Add(b) {
		t.Fatal("first insertions must report change")
	}
	if vs.Add(a) {
		t.Fatal("duplicate insertion must report no change")
	}
	if vs.Len() != 2 {
		t.Fatalf("len = %d, want 2", vs.Len())
	}
	if got := vs.Latest(); !got.Equal(b) {
		t.Fatalf("Latest = %v, want %v", got, b)
	}
}

func TestVersionSetNewestFirst(t *testing.T) {
	var vs VersionSet
	for _, ts := range []int64{3, 1, 9, 7} {
		vs.Add(Cell{Value: []byte(fmt.Sprint(ts)), TS: ts})
	}
	cells := vs.Cells()
	for i := 1; i < len(cells); i++ {
		if cells[i].Wins(cells[i-1]) {
			t.Fatalf("cells not in newest-first order: %v", cells)
		}
	}
	if cells[0].TS != 9 {
		t.Fatalf("newest cell should be first, got %v", cells[0])
	}
}

func TestVersionSetEmptyLatest(t *testing.T) {
	var vs VersionSet
	if got := vs.Latest(); !got.Equal(NullCell) {
		t.Fatalf("empty set Latest = %v, want NullCell", got)
	}
	if len(vs.Cells()) != 0 {
		t.Fatal("empty set must return no cells")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{"a": {Value: []byte("x"), TS: 1}}
	c := r.Clone()
	c["b"] = Cell{TS: 2}
	if _, ok := r["b"]; ok {
		t.Fatal("clone must not alias the original map")
	}
}

func TestUpdateDeletionConstructors(t *testing.T) {
	u := Update("col", []byte("v"), 5)
	if u.Column != "col" || u.Cell.Tombstone || u.Cell.TS != 5 || string(u.Cell.Value) != "v" {
		t.Fatalf("Update built %+v", u)
	}
	d := Deletion("col", 6)
	if !d.Cell.Tombstone || d.Cell.TS != 6 || d.Cell.Value != nil {
		t.Fatalf("Deletion built %+v", d)
	}
}

func TestCellString(t *testing.T) {
	if NullCell.String() != "<null>" {
		t.Fatal("null cell string")
	}
	if s := (Cell{TS: 4, Tombstone: true}).String(); s != "<tombstone @4>" {
		t.Fatalf("tombstone string %q", s)
	}
	if s := (Cell{Value: []byte("v"), TS: 4}).String(); s != `"v" @4` {
		t.Fatalf("value string %q", s)
	}
}
