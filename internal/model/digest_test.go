package model

import "testing"

func TestRowDigestEqualRows(t *testing.T) {
	a := Row{
		"x": {Value: []byte("1"), TS: 10},
		"y": {Value: []byte("2"), TS: 20},
	}
	b := Row{
		"y": {Value: []byte("2"), TS: 20},
		"x": {Value: []byte("1"), TS: 10},
	}
	if RowDigest(a) != RowDigest(b) {
		t.Fatal("identical rows must digest equally regardless of construction order")
	}
}

func TestRowDigestIgnoresNullCells(t *testing.T) {
	a := Row{"x": {Value: []byte("1"), TS: 10}}
	b := Row{"x": {Value: []byte("1"), TS: 10}, "y": NullCell}
	if RowDigest(a) != RowDigest(b) {
		t.Fatal("NullCell padding must not change the digest")
	}
}

func TestRowDigestSensitivity(t *testing.T) {
	base := Row{"x": {Value: []byte("1"), TS: 10}}
	variants := []Row{
		{"x": {Value: []byte("2"), TS: 10}},                  // value
		{"x": {Value: []byte("1"), TS: 11}},                  // timestamp
		{"x": {TS: 10, Tombstone: true}},                     // tombstone
		{"z": {Value: []byte("1"), TS: 10}},                  // column name
		{"x": {Value: []byte("1"), TS: 10}, "y": {TS: 1}},    // extra cell
		{"x": {Value: []byte("1"), TS: 10, Tombstone: true}}, // tombstone w/ value
	}
	d := RowDigest(base)
	for i, v := range variants {
		if RowDigest(v) == d {
			t.Fatalf("variant %d digests equal to base", i)
		}
	}
}

func TestRowDigestEmpty(t *testing.T) {
	if RowDigest(Row{}) != RowDigest(Row{"x": NullCell}) {
		t.Fatal("empty and all-null rows must digest equally")
	}
}
