// Package trace implements per-request tracing for the store: a span
// tree per traced operation, carried through the stack on the
// context.Context (and, across the in-process fabric, on the request
// messages themselves), covering coordinator fan-out rounds, replica
// handlers, storage reads and — crucially for a system whose whole
// point is asynchronous view maintenance — the propagation work an
// acknowledged Put leaves behind. A propagation runs long after its
// originating request returned, so it is recorded as its own root span
// *linked* to the originating trace ID rather than parented under it.
//
// Tracing is opt-in per request (vstore.WithTracing). Untraced
// requests never allocate: every Span method is a no-op on a nil
// receiver, and the helpers return nil spans when no trace is active,
// so instrumentation points cost one nil check.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vstore/internal/clock"
)

// Tracer allocates trace IDs and retains a bounded ring of completed
// root spans for retrieval (DB.Traces, mvctl traces).
type Tracer struct {
	now    func() time.Time
	nextID atomic.Uint64

	mu   sync.Mutex
	ring []*Span // completed roots, oldest first once full
	next int
	size int
}

// New returns a tracer keeping the last capacity completed root spans.
// now supplies timestamps (the injected clock in simulated stacks);
// nil uses the wall clock.
func New(now func() time.Time, capacity int) *Tracer {
	if now == nil {
		now = clock.Wall.Now
	}
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{now: now, ring: make([]*Span, capacity)}
}

// Start begins a new root span. Safe on a nil tracer (returns nil).
func (t *Tracer) Start(op string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, TraceID: t.nextID.Add(1), Op: op, Start: t.now()}
}

// keep records a finished root span in the ring.
func (t *Tracer) keep(s *Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.size < len(t.ring) {
		t.size++
	}
	t.mu.Unlock()
}

// Traces snapshots the retained root spans, newest first.
func (t *Tracer) Traces() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := make([]*Span, 0, t.size)
	for i := 0; i < t.size; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		roots = append(roots, t.ring[idx])
	}
	t.mu.Unlock()
	out := make([]SpanData, 0, len(roots))
	for _, s := range roots {
		out = append(out, s.Data())
	}
	return out
}

// Span is one timed operation in a trace. Fields set at creation
// (TraceID, Link, Op, Start) are immutable; attributes and children
// are mutex-guarded because replica fan-out appends to them from
// concurrent handler goroutines. All methods are no-ops on nil.
type Span struct {
	TraceID uint64
	// Link carries the originating trace ID for spans whose work was
	// caused by another trace but runs asynchronously after it
	// (Algorithm 2 propagations linked to their Put).
	Link  uint64
	Op    string
	Start time.Time

	tracer *Tracer
	root   bool

	mu       sync.Mutex
	duration time.Duration
	finished bool
	attrs    map[string]string
	children []*Span
}

// Child starts a sub-span of s.
func (s *Span) Child(op string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, TraceID: s.TraceID, Op: op, Start: s.tracer.now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// LinkedRoot starts a new root span in the same tracer whose Link
// records s's trace ID: the async-causality edge for work (update
// propagation) that outlives the request that caused it.
func (s *Span) LinkedRoot(op string) *Span {
	if s == nil {
		return nil
	}
	r := s.tracer.Start(op)
	r.Link = s.TraceID
	return r
}

// SetAttr records a key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Finish stamps the span's duration; finishing a root span retains it
// in the tracer's ring. Repeated Finish calls keep the first duration.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.duration = s.tracer.now().Sub(s.Start)
	root := s.root
	s.mu.Unlock()
	if root {
		s.tracer.keep(s)
	}
}

// markRoot flags s so Finish registers it with the tracer.
func (s *Span) markRoot() *Span {
	if s != nil {
		s.root = true
	}
	return s
}

// StartRoot begins a root span that Finish will retain in the ring.
func (t *Tracer) StartRoot(op string) *Span { return t.Start(op).markRoot() }

// LinkedRootRetained is LinkedRoot plus ring retention on Finish.
func (s *Span) LinkedRootRetained(op string) *Span { return s.LinkedRoot(op).markRoot() }

// SpanData is an immutable snapshot of a span tree, safe to marshal
// (the live Span carries locks) and hand to applications.
type SpanData struct {
	TraceID    uint64            `json:"trace_id"`
	Link       uint64            `json:"link,omitempty"`
	Op         string            `json:"op"`
	Start      time.Time         `json:"start"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanData        `json:"children,omitempty"`
}

// Data snapshots the span tree rooted at s.
func (s *Span) Data() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.mu.Lock()
	d := SpanData{
		TraceID:    s.TraceID,
		Link:       s.Link,
		Op:         s.Op,
		Start:      s.Start,
		DurationUS: s.duration.Microseconds(),
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			d.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.Data())
	}
	return d
}

// Format renders the span tree as an indented text block for CLI dumps.
func (d SpanData) Format() string {
	var b strings.Builder
	d.format(&b, 0)
	return b.String()
}

func (d SpanData) format(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s (%dµs)", d.Op, d.DurationUS)
	if depth == 0 {
		fmt.Fprintf(b, " trace=%d", d.TraceID)
		if d.Link != 0 {
			fmt.Fprintf(b, " link=%d", d.Link)
		}
	}
	if len(d.Attrs) > 0 {
		keys := make([]string, 0, len(d.Attrs))
		for k := range d.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, " %s=%s", k, d.Attrs[k])
		}
	}
	b.WriteByte('\n')
	for _, c := range d.Children {
		c.format(b, depth+1)
	}
}

// Walk visits d and every descendant in depth-first order.
func (d SpanData) Walk(fn func(SpanData)) {
	fn(d)
	for _, c := range d.Children {
		c.Walk(fn)
	}
}
