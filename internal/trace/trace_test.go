package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}

func TestSpanTree(t *testing.T) {
	tr := New(fakeClock(time.Millisecond), 8)
	root := tr.StartRoot("client.get")
	root.SetAttr("table", "data")
	c1 := root.Child("coord.get")
	c1.Child("node.get").Finish()
	c1.Finish()
	root.Finish()

	got := tr.Traces()
	if len(got) != 1 {
		t.Fatalf("traces = %d, want 1", len(got))
	}
	d := got[0]
	if d.Op != "client.get" || d.Attrs["table"] != "data" {
		t.Fatalf("root = %+v", d)
	}
	if len(d.Children) != 1 || len(d.Children[0].Children) != 1 {
		t.Fatalf("tree shape wrong: %+v", d)
	}
	if d.Children[0].Children[0].Op != "node.get" {
		t.Fatalf("leaf = %+v", d.Children[0].Children[0])
	}
	if d.DurationUS <= 0 {
		t.Fatalf("duration not stamped: %+v", d)
	}
	if !strings.Contains(d.Format(), "node.get") {
		t.Fatalf("format missing leaf:\n%s", d.Format())
	}
}

func TestLinkedRoot(t *testing.T) {
	tr := New(fakeClock(time.Millisecond), 8)
	put := tr.StartRoot("client.put")
	prop := put.LinkedRootRetained("propagate")
	put.Finish()
	prop.Finish()

	traces := tr.Traces()
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	// Newest first: propagate finished last.
	if traces[0].Op != "propagate" || traces[0].Link != put.TraceID {
		t.Fatalf("propagation not linked: %+v", traces[0])
	}
	if traces[0].TraceID == put.TraceID {
		t.Fatal("linked root must get its own trace ID")
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(fakeClock(time.Millisecond), 2)
	for i := 0; i < 5; i++ {
		tr.StartRoot("op").Finish()
	}
	got := tr.Traces()
	if len(got) != 2 {
		t.Fatalf("ring kept %d, want 2", len(got))
	}
	if got[0].TraceID != 5 || got[1].TraceID != 4 {
		t.Fatalf("wrong survivors: %d, %d", got[0].TraceID, got[1].TraceID)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer should start nil span")
	}
	// All of these must be no-ops, not panics.
	s.SetAttr("k", "v")
	s.Finish()
	if c := s.Child("y"); c != nil {
		t.Fatal("nil span child should be nil")
	}
	if r := s.LinkedRoot("z"); r != nil {
		t.Fatal("nil span linked root should be nil")
	}
	if d := s.Data(); d.Op != "" {
		t.Fatalf("nil span data = %+v", d)
	}
	if got := tr.Traces(); got != nil {
		t.Fatalf("nil tracer traces = %v", got)
	}

	ctx := context.Background()
	if NewContext(ctx, nil) != ctx {
		t.Fatal("NewContext(ctx, nil) must return ctx unchanged")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on bare ctx must be nil")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New(nil, 4)
	s := tr.Start("op")
	ctx := NewContext(context.Background(), s)
	if FromContext(ctx) != s {
		t.Fatal("span lost in context")
	}
}

// TestConcurrentChildren covers the replica fan-out pattern: handler
// goroutines attach children and attrs while the parent finishes.
func TestConcurrentChildren(t *testing.T) {
	tr := New(nil, 4)
	root := tr.StartRoot("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("replica")
			c.SetAttr("node", "n")
			c.Finish()
		}()
	}
	root.Finish()
	wg.Wait()
	if n := len(root.Data().Children); n != 8 {
		t.Fatalf("children = %d, want 8", n)
	}
}

func TestWalk(t *testing.T) {
	tr := New(fakeClock(time.Millisecond), 4)
	root := tr.StartRoot("a")
	root.Child("b").Child("c")
	root.Finish()
	var ops []string
	root.Data().Walk(func(d SpanData) { ops = append(ops, d.Op) })
	if strings.Join(ops, ",") != "a,b,c" {
		t.Fatalf("walk order = %v", ops)
	}
}
