package trace

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying s. A nil span returns ctx unchanged
// so untraced paths stay allocation-free.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
