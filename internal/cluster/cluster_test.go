package cluster_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"vstore/internal/cluster"
	"vstore/internal/model"
	"vstore/internal/transport"
)

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestDefaults(t *testing.T) {
	c := cluster.New(cluster.Config{})
	defer c.Close()
	if c.Size() != 4 || c.N() != 3 {
		t.Fatalf("defaults: size=%d N=%d", c.Size(), c.N())
	}
}

func TestReplicationClampedToNodes(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, N: 5})
	defer c.Close()
	if c.N() != 2 {
		t.Fatalf("N=%d, want clamp to 2", c.N())
	}
}

func TestTableRegistry(t *testing.T) {
	c := cluster.New(cluster.Config{})
	defer c.Close()
	if err := c.CreateTable(""); err == nil {
		t.Fatal("empty table name accepted")
	}
	if err := c.CreateTable("t1"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("t1"); err == nil {
		t.Fatal("duplicate accepted")
	}
	c.CreateTable("t0")
	got := c.Tables()
	if len(got) != 2 || got[0] != "t0" || got[1] != "t1" {
		t.Fatalf("Tables = %v", got)
	}
	if !c.HasTable("t1") || c.HasTable("nope") {
		t.Fatal("HasTable wrong")
	}
}

func TestCreateIndexUnknownTable(t *testing.T) {
	c := cluster.New(cluster.Config{})
	defer c.Close()
	if err := c.CreateIndex("ghost", "col"); err == nil {
		t.Fatal("index on unknown table accepted")
	}
}

func TestCoordinatorWraps(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 3})
	defer c.Close()
	if c.Coordinator(0) != c.Coordinator(3) {
		t.Fatal("coordinator index should wrap modulo cluster size")
	}
}

func TestDataFlowsAcrossNodes(t *testing.T) {
	c := cluster.New(cluster.Config{})
	defer c.Close()
	c.CreateTable("t")
	for i := 0; i < 50; i++ {
		co := c.Coordinator(i % c.Size())
		err := co.Put(ctxT(t), "t", fmt.Sprintf("k%d", i),
			[]model.ColumnUpdate{model.Update("c", []byte(fmt.Sprint(i)), int64(i+1))}, 2)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Every node should hold some replicas with 50 keys and N=3.
	for i, n := range c.Nodes {
		if len(n.TableSnapshot("t")) == 0 {
			t.Fatalf("node %d holds no data; placement broken", i)
		}
	}
	// All rows readable from every coordinator.
	for i := 0; i < c.Size(); i++ {
		row, err := c.Coordinator(i).Get(ctxT(t), "t", "k17", []string{"c"}, 2, false)
		if err != nil || string(row["c"].Value) != "17" {
			t.Fatalf("coordinator %d: %v %v", i, row, err)
		}
	}
}

func TestNodeDownAndRecovery(t *testing.T) {
	c := cluster.New(cluster.Config{RequestTimeout: 200 * time.Millisecond, HintReplayInterval: -1})
	defer c.Close()
	c.CreateTable("t")
	c.SetNodeDown(transport.NodeID(1), true)
	err := c.Coordinator(0).Put(ctxT(t), "t", "k",
		[]model.ColumnUpdate{model.Update("c", []byte("v"), 1)}, 2)
	if err != nil {
		t.Fatalf("write with one node down failed: %v", err)
	}
	c.SetNodeDown(transport.NodeID(1), false)
	c.RunAntiEntropyRound()
	row, err := c.Coordinator(1).Get(ctxT(t), "t", "k", []string{"c"}, 3, false)
	if err != nil || string(row["c"].Value) != "v" {
		t.Fatalf("after recovery: %v %v", row, err)
	}
}
