// Package cluster wires nodes, the consistent-hash ring, a transport
// fabric, per-node coordinators and anti-entropy agents into one
// embedded multi-master cluster — the "small 4 node instance" of the
// paper's evaluation, as a library value.
package cluster

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"vstore/internal/antientropy"
	"vstore/internal/clock"
	"vstore/internal/coord"
	"vstore/internal/lsm"
	"vstore/internal/node"
	"vstore/internal/physical"
	physfs "vstore/internal/physical/fs"
	"vstore/internal/ring"
	"vstore/internal/transport"
	"vstore/internal/wal"
)

// Config describes a cluster.
type Config struct {
	// Nodes is the server count. Default 4 (the paper's testbed).
	Nodes int
	// N is the replication factor. Default 3 (the paper's setting).
	N int
	// VNodes is the virtual-node count per server. Default 64.
	VNodes int
	// Transport is the message fabric; nil selects the zero-latency
	// direct fabric.
	Transport transport.Transport
	// Workers bounds each node's concurrent request execution
	// (0 = unbounded).
	Workers int
	// Service sets simulated per-operation costs on every node.
	Service node.ServiceTimes
	// FlushBytes / CompactAt tune the per-table LSM engines.
	FlushBytes int64
	CompactAt  int
	// RequestTimeout bounds coordinator fan-out rounds.
	RequestTimeout time.Duration
	// HintReplayInterval controls hinted-handoff retry; negative
	// disables.
	HintReplayInterval time.Duration
	// DisableReadRepair turns off coordinator read repair.
	DisableReadRepair bool
	// AntiEntropyInterval enables periodic replica synchronization
	// when positive.
	AntiEntropyInterval time.Duration
	// AntiEntropyBuckets is the digest resolution. Default 64.
	AntiEntropyBuckets int
	// Seed makes storage-engine internals reproducible.
	Seed int64
	// Clock drives node service times, coordinator timeouts and
	// anti-entropy tickers; nil uses the wall clock.
	Clock clock.Clock
	// Backend, when non-nil, makes every node durable: node i's WAL,
	// sstable runs and MANIFEST live under the backend's "node-i"
	// namespace, and Open recovers them before the cluster serves.
	Backend physical.Backend
	// Dir is sugar for a filesystem backend rooted at Dir
	// (physical/fs). Setting both Dir and Backend is an error.
	Dir string
	// Durability tunes the per-node WALs (fsync policy, interval,
	// segment size, latency metrics) when the cluster is durable.
	Durability wal.Options
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.N <= 0 {
		c.N = 3
	}
	if c.N > c.Nodes {
		c.N = c.Nodes
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Transport == nil {
		c.Transport = transport.NewDirect()
	}
	return c
}

// NodeRecovery is what one durable node restored at Open.
type NodeRecovery struct {
	Node    transport.NodeID
	Stats   wal.RecoveryStats
	Intents []wal.Intent
}

// Cluster is an embedded multi-node record store.
type Cluster struct {
	cfg    Config
	Ring   *ring.Ring
	Trans  transport.Transport
	Nodes  []*node.Node
	Coords []*coord.Coordinator
	Agents []*antientropy.Agent
	// Storages holds each node's durable storage root (nil entries in
	// memory mode); Recoveries what each restored at Open.
	Storages   []*wal.Storage
	Recoveries []NodeRecovery

	mu      sync.RWMutex
	tables  map[string]bool
	indexes map[string][]string // table → indexed columns
}

// New builds and starts a memory-mode cluster; it panics on a durable
// config whose storage fails to open (use Open to handle that).
func New(cfg Config) *Cluster {
	c, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("cluster: %v", err))
	}
	return c
}

// Open builds and starts a cluster, opening and recovering each
// node's durable storage when cfg.Backend (or its Dir sugar) is set.
func Open(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	backend := cfg.Backend
	if cfg.Dir != "" {
		if backend != nil {
			return nil, fmt.Errorf("cluster: set Backend or Dir, not both")
		}
		backend = physfs.New(cfg.Dir)
	}
	ids := make([]transport.NodeID, cfg.Nodes)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	c := &Cluster{
		cfg:     cfg,
		Ring:    ring.New(ids, cfg.VNodes),
		Trans:   cfg.Transport,
		tables:  map[string]bool{},
		indexes: map[string][]string{},
	}
	placement := func(table, row string) []transport.NodeID {
		return c.Ring.ReplicasFor(table+"\x00"+row, cfg.N)
	}
	for _, id := range ids {
		var storage *wal.Storage
		if backend != nil {
			var err error
			storage, err = wal.OpenStorage(physical.Sub(backend, NodeSub(id)), cfg.Durability)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("open node %d storage: %w", id, err)
			}
		}
		n := node.New(node.Options{
			ID:      id,
			Workers: cfg.Workers,
			Service: cfg.Service,
			LSM:     lsm.Options{FlushBytes: cfg.FlushBytes, CompactAt: cfg.CompactAt, Seed: cfg.Seed + int64(id)},
			Clock:   cfg.Clock,
			Durable: storage,
		})
		if storage != nil {
			stats, intents, err := n.Recover()
			if err != nil {
				_ = storage.Close() // already failing; recovery error wins
				c.Close()
				return nil, fmt.Errorf("recover node %d: %w", id, err)
			}
			c.Recoveries = append(c.Recoveries, NodeRecovery{Node: id, Stats: stats, Intents: intents})
		}
		n.SetPlacement(placement)
		c.Trans.Register(id, n)
		c.Nodes = append(c.Nodes, n)
		c.Storages = append(c.Storages, storage)
		c.Coords = append(c.Coords, coord.New(id, c.Ring, c.Trans, coord.Options{
			N:                  cfg.N,
			RequestTimeout:     cfg.RequestTimeout,
			HintReplayInterval: cfg.HintReplayInterval,
			DisableReadRepair:  cfg.DisableReadRepair,
			Clock:              cfg.Clock,
		}))
		agent := antientropy.New(n, c.Trans, antientropy.Options{
			Buckets:  cfg.AntiEntropyBuckets,
			Interval: cfg.AntiEntropyInterval,
			Tables:   c.Tables,
			Peers:    c.Ring.Nodes,
			Clock:    cfg.Clock,
		})
		agent.Start()
		c.Agents = append(c.Agents, agent)
	}
	return c, nil
}

// NodeSub returns node id's storage namespace within a cluster
// backend ("node-<id>").
func NodeSub(id transport.NodeID) string {
	return fmt.Sprintf("node-%d", id)
}

// NodeDir returns node id's storage root under a cluster directory
// (the filesystem shape of NodeSub, for fs-backed clusters).
func NodeDir(dir string, id transport.NodeID) string {
	return filepath.Join(dir, NodeSub(id))
}

// Close shuts down background activity, then syncs and closes every
// node's durable storage so a clean shutdown persists all logged
// state.
func (c *Cluster) Close() {
	for _, a := range c.Agents {
		a.Close()
	}
	for _, co := range c.Coords {
		co.Close()
	}
	for _, s := range c.Storages {
		if s != nil {
			_ = s.Close() // best-effort final sync
		}
	}
}

// Size returns the node count.
func (c *Cluster) Size() int { return len(c.Nodes) }

// N returns the replication factor.
func (c *Cluster) N() int { return c.cfg.N }

// CreateTable registers a table name. Storage is created lazily on
// each node; registration feeds anti-entropy and validation.
func (c *Cluster) CreateTable(name string) error {
	if name == "" {
		return fmt.Errorf("cluster: empty table name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tables[name] {
		return fmt.Errorf("cluster: table %q already exists", name)
	}
	c.tables[name] = true
	return nil
}

// DropTable deregisters a table and discards its storage on every
// node — in-memory stores and, in durable mode, manifest entries, run
// files and WAL segments. Dropping an unknown name is an error;
// per-node drops after the first failure still run so a partial drop
// removes as much as it can (the caller retries for the rest).
func (c *Cluster) DropTable(name string) error {
	c.mu.Lock()
	if !c.tables[name] {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown table %q", name)
	}
	delete(c.tables, name)
	c.mu.Unlock()
	var first error
	for _, n := range c.Nodes {
		if err := n.DropTable(name); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// HasTable reports whether the table is registered.
func (c *Cluster) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// Tables returns the registered table names, sorted.
func (c *Cluster) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for t := range c.tables {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// CreateIndex declares a native secondary index on every node.
func (c *Cluster) CreateIndex(table, column string) error {
	if !c.HasTable(table) {
		return fmt.Errorf("cluster: unknown table %q", table)
	}
	for _, n := range c.Nodes {
		n.CreateIndex(table, column)
	}
	c.mu.Lock()
	found := false
	for _, col := range c.indexes[table] {
		if col == column {
			found = true
		}
	}
	if !found {
		c.indexes[table] = append(c.indexes[table], column)
	}
	c.mu.Unlock()
	return nil
}

// Indexes returns the declared secondary indexes per table (for
// schema persistence).
func (c *Cluster) Indexes() map[string][]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string][]string, len(c.indexes))
	for t, cols := range c.indexes {
		out[t] = append([]string(nil), cols...)
	}
	return out
}

// Coordinator returns node i's coordinator; clients bind to one.
func (c *Cluster) Coordinator(i int) *coord.Coordinator {
	return c.Coords[i%len(c.Coords)]
}

// SetNodeDown injects or heals a node failure.
func (c *Cluster) SetNodeDown(id transport.NodeID, down bool) {
	c.Trans.SetDown(id, down)
}

// RunAntiEntropyRound synchronously runs one full anti-entropy round
// on every node (tests and deterministic convergence).
func (c *Cluster) RunAntiEntropyRound() {
	for _, a := range c.Agents {
		a.RunRound()
	}
}
