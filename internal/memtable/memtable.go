// Package memtable implements the mutable in-memory sorted run at the
// top of each node's storage engine. Writes apply last-writer-wins
// merging per cell, so the memtable always holds the winning version
// of every cell it has seen, exactly like a Cassandra memtable.
package memtable

import (
	"bytes"
	"sync"

	"vstore/internal/model"
	"vstore/internal/skiplist"
)

// Memtable is a concurrency-safe sorted run of (storage key → cell).
type Memtable struct {
	mu   sync.RWMutex
	list *skiplist.List
}

// New returns an empty memtable.
func New(seed int64) *Memtable {
	return &Memtable{list: skiplist.New(seed)}
}

// cellOverhead approximates the fixed per-cell footprint beyond the
// value payload (timestamp + tombstone flag); the skiplist itself
// accounts for key bytes on insert.
const cellOverhead = 9

// Apply merges the cell into the entry stored under key. If the cell
// loses the LWW comparison against the stored cell, the memtable is
// unchanged — Put is idempotent and order-insensitive.
func (m *Memtable) Apply(key []byte, c model.Cell) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.list.Upsert(key, func(old any, ok bool) any {
		if !ok {
			m.list.AddBytes(int64(len(c.Value)) + cellOverhead)
			return c
		}
		oldc := old.(model.Cell)
		merged := model.Merge(oldc, c)
		// Keep the byte estimate tracking the retained value: a merge
		// that replaces the value adjusts by the size delta, one that
		// loses leaves the accounting untouched.
		m.list.AddBytes(int64(len(merged.Value)) - int64(len(oldc.Value)))
		return merged
	})
}

// Get returns the cell stored under key.
func (m *Memtable) Get(key []byte) (model.Cell, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.list.Get(key)
	if !ok {
		return model.NullCell, false
	}
	return v.(model.Cell), true
}

// Len returns the number of distinct cells held.
func (m *Memtable) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.list.Len()
}

// ApproxBytes estimates the memory footprint, used to trigger flushes.
func (m *Memtable) ApproxBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.list.ApproxBytes()
}

// ScanPrefix returns all entries whose key starts with prefix, in key
// order. The result is materialized so no lock is held afterwards;
// rows are small in this system (a handful of columns).
func (m *Memtable) ScanPrefix(prefix []byte) []model.Entry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []model.Entry
	for it := m.list.Seek(prefix); it.Valid(); it.Next() {
		if !bytes.HasPrefix(it.Key(), prefix) {
			break
		}
		out = append(out, model.Entry{Key: append([]byte(nil), it.Key()...), Cell: it.Value().(model.Cell)})
	}
	return out
}

// RowsFrom returns up to maxRows distinct row names whose storage keys
// sort after the given row prefix, in storage-key order. It walks the
// skiplist iterator directly — no entry materialization — so partition
// scans can page through a large memtable without copying it. An empty
// prefix starts at the beginning; keys still under the prefix (columns
// of the cursor row itself) are skipped.
func (m *Memtable) RowsFrom(after []byte, maxRows int) []string {
	if maxRows <= 0 {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	var last string
	for it := m.list.Seek(after); it.Valid(); it.Next() {
		if len(after) > 0 && bytes.HasPrefix(it.Key(), after) {
			continue
		}
		row, _, err := model.DecodeKey(it.Key())
		if err != nil {
			continue
		}
		if len(out) > 0 && row == last {
			continue
		}
		if len(out) == maxRows {
			break
		}
		out = append(out, row)
		last = row
	}
	return out
}

// Snapshot returns every entry in key order. Used when flushing the
// memtable into an sstable and by anti-entropy digests.
func (m *Memtable) Snapshot() []model.Entry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]model.Entry, 0, m.list.Len())
	for it := m.list.Iter(); it.Valid(); it.Next() {
		out = append(out, model.Entry{Key: append([]byte(nil), it.Key()...), Cell: it.Value().(model.Cell)})
	}
	return out
}
