package memtable

import (
	"fmt"
	"sync"
	"testing"

	"vstore/internal/model"
)

func key(row, col string) []byte { return model.EncodeKey(row, col) }

func TestApplyGet(t *testing.T) {
	m := New(1)
	m.Apply(key("r1", "c1"), model.Cell{Value: []byte("v1"), TS: 1})
	got, ok := m.Get(key("r1", "c1"))
	if !ok || string(got.Value) != "v1" {
		t.Fatalf("Get = %v,%v", got, ok)
	}
	if _, ok := m.Get(key("r1", "c2")); ok {
		t.Fatal("absent cell returned ok")
	}
}

func TestApplyLWW(t *testing.T) {
	m := New(1)
	k := key("r", "c")
	m.Apply(k, model.Cell{Value: []byte("new"), TS: 10})
	m.Apply(k, model.Cell{Value: []byte("old"), TS: 5}) // must lose
	got, _ := m.Get(k)
	if string(got.Value) != "new" || got.TS != 10 {
		t.Fatalf("stale write overwrote newer cell: %v", got)
	}
	m.Apply(k, model.Cell{TS: 20, Tombstone: true})
	got, _ = m.Get(k)
	if !got.Tombstone {
		t.Fatalf("tombstone lost: %v", got)
	}
}

func TestScanPrefixIsolatesRows(t *testing.T) {
	m := New(1)
	m.Apply(key("a", "c1"), model.Cell{TS: 1})
	m.Apply(key("a", "c2"), model.Cell{TS: 1})
	m.Apply(key("ab", "c1"), model.Cell{TS: 1}) // must not leak into row "a"
	m.Apply(key("b", "c1"), model.Cell{TS: 1})
	got := m.ScanPrefix(model.RowPrefix("a"))
	if len(got) != 2 {
		t.Fatalf("ScanPrefix(a) returned %d entries, want 2", len(got))
	}
	for _, e := range got {
		row, _, err := model.DecodeKey(e.Key)
		if err != nil || row != "a" {
			t.Fatalf("ScanPrefix leaked row %q", row)
		}
	}
}

func TestSnapshotSortedComplete(t *testing.T) {
	m := New(1)
	for i := 0; i < 100; i++ {
		m.Apply(key(fmt.Sprintf("row%02d", i%10), fmt.Sprintf("c%d", i/10)), model.Cell{TS: int64(i)})
	}
	snap := m.Snapshot()
	if len(snap) != 100 {
		t.Fatalf("snapshot has %d entries, want 100", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if string(snap[i-1].Key) >= string(snap[i].Key) {
			t.Fatal("snapshot not sorted")
		}
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestConcurrentApply(t *testing.T) {
	m := New(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("row%d", i%20), "c")
				m.Apply(k, model.Cell{Value: []byte{byte(w)}, TS: int64(i*8 + w)})
				m.Get(k)
				if i%50 == 0 {
					m.ScanPrefix(model.RowPrefix("row1"))
				}
			}
		}(w)
	}
	wg.Wait()
	// Every row's cell must hold the highest timestamp written to it.
	for r := 0; r < 20; r++ {
		got, ok := m.Get(key(fmt.Sprintf("row%d", r), "c"))
		if !ok {
			t.Fatalf("row%d missing", r)
		}
		// Highest ts written to row r: max over i≡r (mod 20), w of i*8+w.
		var want int64
		for w := 0; w < 8; w++ {
			for i := r; i < 200; i += 20 {
				if ts := int64(i*8 + w); ts > want {
					want = ts
				}
			}
		}
		if got.TS != want {
			t.Fatalf("row%d ts = %d, want %d", r, got.TS, want)
		}
	}
}

func TestApproxBytesGrows(t *testing.T) {
	m := New(1)
	before := m.ApproxBytes()
	m.Apply(key("row", "col"), model.Cell{Value: make([]byte, 100), TS: 1})
	if m.ApproxBytes() <= before {
		t.Fatal("ApproxBytes did not grow after insert")
	}
}

func TestApproxBytesTracksMergedValues(t *testing.T) {
	m := New(1)
	k := key("row", "col")
	m.Apply(k, model.Cell{Value: make([]byte, 100), TS: 1})
	after100 := m.ApproxBytes()
	// A winning update to a larger value must grow the estimate by the
	// size delta, not leave it at the superseded value's size.
	m.Apply(k, model.Cell{Value: make([]byte, 300), TS: 2})
	after300 := m.ApproxBytes()
	if after300 != after100+200 {
		t.Fatalf("ApproxBytes after growth = %d, want %d", after300, after100+200)
	}
	// A winning update to a smaller value shrinks it.
	m.Apply(k, model.Cell{Value: make([]byte, 50), TS: 3})
	if got := m.ApproxBytes(); got != after100-50 {
		t.Fatalf("ApproxBytes after shrink = %d, want %d", got, after100-50)
	}
	// A losing update leaves accounting untouched.
	m.Apply(k, model.Cell{Value: make([]byte, 1000), TS: 2})
	if got := m.ApproxBytes(); got != after100-50 {
		t.Fatalf("ApproxBytes after losing write = %d, want %d", got, after100-50)
	}
}
