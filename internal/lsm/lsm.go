// Package lsm assembles the memtable and sstable runs into the
// log-structured storage engine each node uses for every table it
// hosts (base tables, view tables and index fragments alike).
//
// Writes land in the memtable; when it exceeds the flush threshold it
// is frozen into an immutable sstable. When too many sstables
// accumulate, a size-tiered compaction merges them. Because cells
// carry their own total order (timestamps with deterministic
// tie-breaks), reads merge across all runs rather than stopping at the
// newest run that contains the key — a "newer" run can legally contain
// an older cell in this system, since timestamps are client-supplied.
package lsm

import (
	"bytes"
	"sort"
	"sync"

	"vstore/internal/memtable"
	"vstore/internal/metrics"
	"vstore/internal/model"
	"vstore/internal/sstable"
)

// Persist is the durability hook a store calls when one is
// configured (internal/wal implements it). AppendMutation runs under
// the store lock before the memtable apply, so a record can never be
// truncated by a flush it was not part of; FlushRun and ReplaceRuns
// must make the run durable and committed before returning so the
// store can treat the returned id as stable.
type Persist interface {
	// AppendMutation logs one cell write ahead of applying it.
	AppendMutation(key []byte, c model.Cell) error
	// FlushRun persists a frozen memtable as a new run and truncates
	// the log past it, returning the run's id.
	FlushRun(t *sstable.Table) (uint64, error)
	// ReplaceRuns persists a compaction: merged supersedes the runs
	// named by old. Returns the merged run's id.
	ReplaceRuns(old []uint64, merged *sstable.Table) (uint64, error)
}

// Options tune the engine. Zero values select sensible defaults.
type Options struct {
	// FlushBytes is the approximate memtable size that triggers a
	// flush. Default 4 MiB.
	FlushBytes int64
	// CompactAt is the sstable count that triggers a full compaction.
	// Default 6.
	CompactAt int
	// Seed makes skiplist tower heights reproducible.
	Seed int64
	// Persist, when non-nil, makes the store durable: mutations are
	// WAL-logged before apply and flushes/compactions go through it.
	Persist Persist
}

func (o Options) withDefaults() Options {
	if o.FlushBytes == 0 {
		o.FlushBytes = 4 << 20
	}
	if o.CompactAt == 0 {
		o.CompactAt = 6
	}
	return o
}

// Store is one table's storage on one node.
type Store struct {
	opts Options

	mu   sync.RWMutex
	mem  *memtable.Memtable
	segs []*sstable.Table // newest first
	// segIDs mirrors segs with the Persist-assigned run ids (all zero
	// in memory-only mode).
	segIDs []uint64

	flushes     int
	compactions int

	// Read-path pruning counters (atomic; bumped outside mu).
	prunedPoint metrics.Counter
	prunedRow   metrics.Counter
}

// New returns an empty store.
func New(opts Options) *Store {
	opts = opts.withDefaults()
	return &Store{opts: opts, mem: memtable.New(opts.Seed)}
}

// Run is one durable sstable run plus its id, for rebuilding a store
// from a recovered MANIFEST.
type Run struct {
	ID    uint64
	Table *sstable.Table
}

// NewFromRuns rebuilds a store around recovered runs (newest first)
// with an empty memtable; the caller replays the WAL tail via Recover.
func NewFromRuns(opts Options, runs []Run) *Store {
	s := New(opts)
	for _, r := range runs {
		s.segs = append(s.segs, r.Table)
		s.segIDs = append(s.segIDs, r.ID)
	}
	return s
}

// Recover merges WAL-tail entries into the memtable without re-logging
// them (they are already durable in the log being replayed). No flush
// is triggered: recovery must not rewrite runs before the node is
// serving.
func (s *Store) Recover(entries []model.Entry) {
	s.mu.Lock()
	for _, e := range entries {
		//lint:ignore walorder replay path: entries come from the WAL tail being recovered, so they are already durable and re-logging would double them
		s.mem.Apply(e.Key, e.Cell)
	}
	s.mu.Unlock()
}

// Apply merges one cell into the store, write-ahead-logging it first
// when the store is durable. An error means the cell is neither logged
// nor applied and the write must not be acknowledged.
func (s *Store) Apply(row, column string, c model.Cell) error {
	key := model.EncodeKey(row, column)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.Persist != nil {
		if err := s.opts.Persist.AppendMutation(key, c); err != nil {
			return err
		}
	}
	s.mem.Apply(key, c)
	if s.mem.ApproxBytes() >= s.opts.FlushBytes {
		return s.flushLocked()
	}
	return nil
}

// ApplyEntries merges a batch of raw entries (used by anti-entropy and
// hinted handoff replay). On error a prefix of the batch may have been
// applied; the batch is safe to retry whole (LWW merge is idempotent).
func (s *Store) ApplyEntries(entries []model.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if s.opts.Persist != nil {
			if err := s.opts.Persist.AppendMutation(e.Key, e.Cell); err != nil {
				return err
			}
		}
		s.mem.Apply(e.Key, e.Cell)
	}
	if s.mem.ApproxBytes() >= s.opts.FlushBytes {
		return s.flushLocked()
	}
	return nil
}

// flushLocked freezes the memtable into a new sstable. Caller holds
// mu. In durable mode the run is persisted and the WAL truncated
// before the in-memory state switches; on error the memtable is kept
// so no logged write is dropped.
func (s *Store) flushLocked() error {
	snap := s.mem.Snapshot()
	if len(snap) == 0 {
		return nil
	}
	t := sstable.Build(snap)
	var id uint64
	if s.opts.Persist != nil {
		var err error
		if id, err = s.opts.Persist.FlushRun(t); err != nil {
			return err
		}
	}
	s.segs = append([]*sstable.Table{t}, s.segs...)
	s.segIDs = append([]uint64{id}, s.segIDs...)
	s.mem = memtable.New(s.opts.Seed + int64(s.flushes) + 1)
	s.flushes++
	if len(s.segs) >= s.opts.CompactAt {
		return s.compactLocked(nil)
	}
	return nil
}

// compactLocked merges every sstable into one. Tombstones are retained
// unless dropBefore is non-nil (see CollectGarbage): the memtable may
// still hold cells the tombstones must shadow, and replicas may be
// behind.
func (s *Store) compactLocked(dropBefore *int64) error {
	runs := make([][]model.Entry, 0, len(s.segs))
	for _, t := range s.segs {
		runs = append(runs, t.Entries())
	}
	merged := sstable.MergeRuns(runs, false)
	if dropBefore != nil {
		kept := merged[:0]
		for _, e := range merged {
			if e.Cell.Tombstone && e.Cell.TS < *dropBefore {
				continue
			}
			kept = append(kept, e)
		}
		merged = kept
	}
	t := sstable.Build(merged)
	var id uint64
	if s.opts.Persist != nil {
		var err error
		if id, err = s.opts.Persist.ReplaceRuns(append([]uint64(nil), s.segIDs...), t); err != nil {
			return err
		}
	}
	s.segs = []*sstable.Table{t}
	s.segIDs = []uint64{id}
	s.compactions++
	return nil
}

// Flush forces the memtable into an sstable (useful in tests and
// before snapshotting).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// CollectGarbage performs a full compaction that also drops tombstones
// older than beforeTS. Dropping a tombstone is only safe once every
// replica has seen it (cf. Cassandra's gc_grace_seconds); the caller
// decides the horizon.
func (s *Store) CollectGarbage(beforeTS int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	if len(s.segs) == 0 {
		return nil
	}
	return s.compactLocked(&beforeTS)
}

// RunCount returns the number of on-disk runs a read currently has to
// consult (the memtable is extra). Cheap; sampled into trace spans.
func (s *Store) RunCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segs)
}

// Get returns the LWW-winning cell for (row, column) across all runs.
// The boolean reports whether any version (including a tombstone)
// exists.
func (s *Store) Get(row, column string) (model.Cell, bool) {
	key := model.EncodeKey(row, column)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.getLocked(key)
}

// getLocked merges one storage key across the memtable and all
// non-prunable runs. Caller holds mu (read or write). Runs whose
// bloom filter or key bounds exclude the key are skipped without
// touching their indexes — but every run that may contain the key IS
// consulted, because client-supplied timestamps mean any run can hold
// the winning cell.
func (s *Store) getLocked(key []byte) (model.Cell, bool) {
	best := model.NullCell
	found := false
	if c, ok := s.mem.Get(key); ok {
		best, found = c, true
	}
	for _, t := range s.segs {
		if !t.MayContainKey(key) {
			s.prunedPoint.Inc()
			continue
		}
		if c, ok := t.Get(key); ok {
			best = model.Merge(best, c)
			found = true
		}
	}
	return best, found
}

// GetRow returns every cell of the row, LWW-merged across runs.
// Tombstoned cells are included (callers that implement Get semantics
// filter them; replication internals need them).
// rowScratch recycles the per-GetRow merge buffers; the merged
// entries only live until the result map is built, so pooling them
// removes the dominant allocation of the row-read hot path.
var rowScratch = sync.Pool{New: func() any { return new(rowBufs) }}

type rowBufs struct {
	runs   [][]model.Entry
	merged []model.Entry
}

func (s *Store) GetRow(row string) model.Row {
	prefix := model.RowPrefix(row)
	buf := rowScratch.Get().(*rowBufs)
	runs := buf.runs[:0]
	s.mu.RLock()
	// The memtable scan materializes its own entries and sstable scans
	// alias immutable runs, so the merge below can happen outside the
	// store lock; only run discovery needs it.
	if mem := s.mem.ScanPrefix(prefix); len(mem) > 0 {
		runs = append(runs, mem)
	}
	for _, t := range s.segs {
		if !t.MayContainRow(prefix) {
			s.prunedRow.Inc()
			continue
		}
		if es := t.ScanPrefix(prefix); len(es) > 0 {
			runs = append(runs, es)
		}
	}
	s.mu.RUnlock()
	out := model.Row{}
	// Keys sharing the row prefix differ only in their column suffix,
	// so the column name is sliced off directly instead of decoding
	// each key.
	if len(runs) == 1 {
		// Single populated run: sorted and duplicate-free already.
		for _, e := range runs[0] {
			out[string(e.Key[len(prefix):])] = e.Cell
		}
	} else if len(runs) > 1 {
		buf.merged = sstable.AppendMergedRuns(buf.merged[:0], runs, false)
		for _, e := range buf.merged {
			out[string(e.Key[len(prefix):])] = e.Cell
		}
	}
	buf.runs = runs
	rowScratch.Put(buf)
	return out
}

// GetColumns returns the requested columns of the row. Missing cells
// come back as model.NullCell so the caller sees an entry per column.
func (s *Store) GetColumns(row string, columns []string) model.Row {
	out := model.Row{}
	var keyBuf []byte
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, col := range columns {
		keyBuf = model.AppendKey(keyBuf[:0], row, col)
		c, ok := s.getLocked(keyBuf)
		if !ok {
			c = model.NullCell
		}
		out[col] = c
	}
	return out
}

// ScanRows returns up to limit distinct row names stored after
// afterRow, in storage-key order (length-prefixed encoding, so the
// order groups rows by name length first). The order is stable across
// calls and runs, which makes the last returned row a resumable
// cursor: backfill partition scans page through a table with repeated
// ScanRows calls, riding the memtable and sstable iterators instead of
// materializing a Snapshot per batch. An empty afterRow starts at the
// beginning.
func (s *Store) ScanRows(afterRow string, limit int) []string {
	if limit <= 0 {
		return nil
	}
	var after []byte
	if afterRow != "" {
		after = model.RowPrefix(afterRow)
	}
	s.mu.RLock()
	cands := s.mem.RowsFrom(after, limit)
	for _, t := range s.segs {
		cands = append(cands, t.RowsFrom(after, limit)...)
	}
	s.mu.RUnlock()
	if len(cands) == 0 {
		return nil
	}
	// The k smallest distinct rows overall are a subset of the union of
	// each run's k smallest, so merging the per-run pages is exact.
	sort.Slice(cands, func(i, j int) bool {
		return bytes.Compare(model.RowPrefix(cands[i]), model.RowPrefix(cands[j])) < 0
	})
	out := make([]string, 0, limit)
	for _, r := range cands {
		if len(out) > 0 && out[len(out)-1] == r {
			continue
		}
		out = append(out, r)
		if len(out) == limit {
			break
		}
	}
	return out
}

// Snapshot returns the full LWW-merged content of the store in key
// order. Used by anti-entropy and by index rebuilds.
func (s *Store) Snapshot() []model.Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	runs := make([][]model.Entry, 0, len(s.segs)+1)
	runs = append(runs, s.mem.Snapshot())
	for _, t := range s.segs {
		runs = append(runs, t.Entries())
	}
	return sstable.MergeRuns(runs, false)
}

// Stats reports engine internals for observability and tests.
type Stats struct {
	MemtableCells int
	Segments      int
	Flushes       int
	Compactions   int
	// RunsPrunedPoint counts sstable runs skipped by point Gets via
	// bloom filter or key bounds; RunsPrunedRow the same for row
	// scans.
	RunsPrunedPoint int64
	RunsPrunedRow   int64
}

// Stats returns a snapshot of engine counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		MemtableCells:   s.mem.Len(),
		Segments:        len(s.segs),
		Flushes:         s.flushes,
		Compactions:     s.compactions,
		RunsPrunedPoint: s.prunedPoint.Load(),
		RunsPrunedRow:   s.prunedRow.Load(),
	}
}
