package lsm

import (
	"fmt"
	"testing"

	"vstore/internal/model"
	physfs "vstore/internal/physical/fs"
	"vstore/internal/wal"
)

// TestDurableStoreCrashRecovery drives a WAL-backed store through
// flushes and a compaction, crashes it (no final sync), and rebuilds
// from the recovered runs + WAL tail. Every acknowledged cell must
// come back with its winning timestamp.
func TestDurableStoreCrashRecovery(t *testing.T) {
	b := physfs.New(t.TempDir())
	st, err := wal.OpenStorage(b, wal.Options{Policy: wal.SyncAlways, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{FlushBytes: 256, CompactAt: 3, Seed: 1, Persist: st.Table("t")}
	s := New(opts)

	want := map[string]model.Cell{}
	for i := 0; i < 120; i++ {
		row := fmt.Sprintf("row-%d", i%10)
		col := fmt.Sprintf("col-%d", i%4)
		c := model.Cell{Value: []byte(fmt.Sprintf("v%d", i)), TS: int64(i + 1)}
		if err := s.Apply(row, col, c); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		want[row+"/"+col] = c
	}
	stats := s.Stats()
	if stats.Flushes == 0 || stats.Compactions == 0 {
		t.Fatalf("workload too small to exercise durable flush+compact: %+v", stats)
	}
	if err := st.Abandon(); err != nil { // crash
		t.Fatal(err)
	}

	st2, err := wal.OpenStorage(b, wal.Options{Policy: wal.SyncAlways, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	rt := rec.Tables["t"]
	runs := make([]Run, 0, len(rt.Runs))
	for _, r := range rt.Runs {
		runs = append(runs, Run{ID: r.ID, Table: r.Table})
	}
	s2 := NewFromRuns(Options{FlushBytes: 256, CompactAt: 3, Seed: 1, Persist: st2.Table("t")}, runs)
	s2.Recover(rt.Tail)

	for key, c := range want {
		var row, col string
		for i := range key {
			if key[i] == '/' {
				row, col = key[:i], key[i+1:]
				break
			}
		}
		got, ok := s2.Get(row, col)
		if !ok || string(got.Value) != string(c.Value) || got.TS != c.TS {
			t.Fatalf("recovered Get(%s,%s) = %+v, %v; want %+v", row, col, got, ok, c)
		}
	}

	// The recovered store keeps working durably: more writes, another
	// flush, and the run ids it reports back stay coherent.
	if err := s2.Apply("row-0", "col-0", model.Cell{Value: []byte("post"), TS: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("row-0", "col-0"); !ok || string(got.Value) != "post" {
		t.Fatalf("post-recovery write lost: %+v, %v", got, ok)
	}
}
