package lsm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"vstore/internal/model"
)

// small returns options that flush and compact aggressively so tests
// exercise the multi-run read path.
func small() Options {
	return Options{FlushBytes: 256, CompactAt: 4, Seed: 1}
}

func TestApplyGetAcrossFlushes(t *testing.T) {
	s := New(small())
	for i := 0; i < 200; i++ {
		s.Apply(fmt.Sprintf("row%03d", i), "c", model.Cell{Value: []byte(fmt.Sprint(i)), TS: int64(i)})
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatalf("expected flushes with tiny threshold, stats %+v", st)
	}
	for i := 0; i < 200; i++ {
		c, ok := s.Get(fmt.Sprintf("row%03d", i), "c")
		if !ok || string(c.Value) != fmt.Sprint(i) {
			t.Fatalf("row%03d = %v,%v", i, c, ok)
		}
	}
}

func TestLWWAcrossRuns(t *testing.T) {
	s := New(Options{Seed: 1})
	// Newer timestamp written first, flushed into a segment...
	s.Apply("r", "c", model.Cell{Value: []byte("winner"), TS: 100})
	s.Flush()
	// ...then an older timestamp lands in the memtable. The "newer
	// run" (memtable) holds the older cell; the read must still
	// return the winner by timestamp.
	s.Apply("r", "c", model.Cell{Value: []byte("loser"), TS: 50})
	c, _ := s.Get("r", "c")
	if string(c.Value) != "winner" {
		t.Fatalf("read returned %v; LWW across runs broken", c)
	}
}

func TestTombstoneShadowsAcrossRuns(t *testing.T) {
	s := New(Options{Seed: 1})
	s.Apply("r", "c", model.Cell{Value: []byte("v"), TS: 1})
	s.Flush()
	s.Apply("r", "c", model.Cell{TS: 2, Tombstone: true})
	c, ok := s.Get("r", "c")
	if !ok || !c.Tombstone {
		t.Fatalf("tombstone not visible: %v,%v", c, ok)
	}
	if !c.IsNull() {
		t.Fatal("tombstoned cell should read as null")
	}
}

func TestCompactionPreservesContent(t *testing.T) {
	s := New(small())
	oracle := map[string]model.Cell{}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		row := fmt.Sprintf("row%02d", r.Intn(50))
		col := fmt.Sprintf("c%d", r.Intn(3))
		c := model.Cell{Value: []byte(fmt.Sprint(i)), TS: int64(r.Intn(500))}
		if r.Intn(10) == 0 {
			c = model.Cell{TS: c.TS, Tombstone: true}
		}
		s.Apply(row, col, c)
		k := row + "\x00" + col
		oracle[k] = model.Merge(oracle[k], c)
	}
	if s.Stats().Compactions == 0 {
		t.Fatalf("expected compactions, stats %+v", s.Stats())
	}
	for k, want := range oracle {
		var row, col string
		fmt.Sscanf(k, "%s", &row) // split manually below instead
		for i := range k {
			if k[i] == 0 {
				row, col = k[:i], k[i+1:]
				break
			}
		}
		got, ok := s.Get(row, col)
		if !ok || !got.Equal(want) {
			t.Fatalf("(%s,%s) = %v,%v want %v", row, col, got, ok, want)
		}
	}
}

func TestGetRow(t *testing.T) {
	s := New(small())
	s.Apply("r", "a", model.Cell{Value: []byte("1"), TS: 1})
	s.Flush()
	s.Apply("r", "b", model.Cell{Value: []byte("2"), TS: 2})
	s.Apply("r", "a", model.Cell{Value: []byte("1b"), TS: 3})
	s.Apply("other", "a", model.Cell{Value: []byte("x"), TS: 1})
	row := s.GetRow("r")
	if len(row) != 2 {
		t.Fatalf("GetRow returned %d cells: %v", len(row), row)
	}
	if string(row["a"].Value) != "1b" || string(row["b"].Value) != "2" {
		t.Fatalf("GetRow content wrong: %v", row)
	}
}

func TestGetColumnsIncludesMissing(t *testing.T) {
	s := New(Options{Seed: 1})
	s.Apply("r", "a", model.Cell{Value: []byte("1"), TS: 1})
	row := s.GetColumns("r", []string{"a", "zzz"})
	if !row["zzz"].Equal(model.NullCell) {
		t.Fatalf("missing column should be NullCell, got %v", row["zzz"])
	}
	if string(row["a"].Value) != "1" {
		t.Fatalf("present column wrong: %v", row["a"])
	}
}

func TestSnapshotMergesRuns(t *testing.T) {
	s := New(Options{Seed: 1})
	s.Apply("r1", "c", model.Cell{Value: []byte("old"), TS: 1})
	s.Flush()
	s.Apply("r1", "c", model.Cell{Value: []byte("new"), TS: 2})
	s.Apply("r2", "c", model.Cell{Value: []byte("x"), TS: 1})
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2 (deduplicated)", len(snap))
	}
	for _, e := range snap {
		row, _, _ := model.DecodeKey(e.Key)
		if row == "r1" && string(e.Cell.Value) != "new" {
			t.Fatalf("snapshot kept stale cell: %v", e.Cell)
		}
	}
}

func TestCollectGarbage(t *testing.T) {
	s := New(Options{Seed: 1})
	s.Apply("r", "dead", model.Cell{TS: 5, Tombstone: true})
	s.Apply("r", "recent", model.Cell{TS: 50, Tombstone: true})
	s.Apply("r", "live", model.Cell{Value: []byte("v"), TS: 5})
	s.CollectGarbage(10)
	if _, ok := s.Get("r", "dead"); ok {
		t.Fatal("old tombstone survived GC")
	}
	if c, ok := s.Get("r", "recent"); !ok || !c.Tombstone {
		t.Fatal("recent tombstone must survive GC")
	}
	if c, ok := s.Get("r", "live"); !ok || string(c.Value) != "v" {
		t.Fatal("live cell lost in GC")
	}
}

func TestApplyEntries(t *testing.T) {
	s := New(Options{Seed: 1})
	entries := []model.Entry{
		{Key: model.EncodeKey("r1", "c"), Cell: model.Cell{Value: []byte("a"), TS: 1}},
		{Key: model.EncodeKey("r2", "c"), Cell: model.Cell{Value: []byte("b"), TS: 2}},
	}
	s.ApplyEntries(entries)
	if c, _ := s.Get("r2", "c"); string(c.Value) != "b" {
		t.Fatalf("ApplyEntries lost data: %v", c)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	s := New(Options{FlushBytes: 512, CompactAt: 3, Seed: 1})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				row := fmt.Sprintf("row%d", r.Intn(30))
				switch r.Intn(4) {
				case 0, 1:
					s.Apply(row, "c", model.Cell{Value: []byte{byte(w)}, TS: int64(i*6 + w)})
				case 2:
					s.Get(row, "c")
				case 3:
					s.GetRow(row)
				}
			}
		}(w)
	}
	wg.Wait()
	// The engine must still answer reads after concurrent churn.
	if snap := s.Snapshot(); len(snap) == 0 {
		t.Fatal("store empty after concurrent writes")
	}
}

// Convergence property: two stores receiving the same set of updates
// in different orders end in identical state.
func TestReplicaConvergence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var updates []model.Entry
		for i := 0; i < 100; i++ {
			c := model.Cell{Value: []byte{byte(r.Intn(26) + 'a')}, TS: int64(r.Intn(40))}
			if r.Intn(6) == 0 {
				c = model.Cell{TS: c.TS, Tombstone: true}
			}
			updates = append(updates, model.Entry{
				Key:  model.EncodeKey(fmt.Sprintf("row%d", r.Intn(10)), fmt.Sprintf("c%d", r.Intn(2))),
				Cell: c,
			})
		}
		a := New(Options{FlushBytes: 300, CompactAt: 3, Seed: 1})
		b := New(Options{FlushBytes: 5000, Seed: 2})
		for _, u := range updates {
			a.ApplyEntries([]model.Entry{u})
		}
		for _, i := range r.Perm(len(updates)) {
			b.ApplyEntries([]model.Entry{updates[i]})
		}
		sa, sb := a.Snapshot(), b.Snapshot()
		if len(sa) != len(sb) {
			t.Fatalf("trial %d: snapshots differ in size %d vs %d", trial, len(sa), len(sb))
		}
		for i := range sa {
			if string(sa[i].Key) != string(sb[i].Key) || !sa[i].Cell.Equal(sb[i].Cell) {
				t.Fatalf("trial %d: divergence at %d: %v vs %v", trial, i, sa[i], sb[i])
			}
		}
	}
}

func BenchmarkLSMApply(b *testing.B) {
	s := New(Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply(fmt.Sprintf("row%05d", i%10000), "c", model.Cell{Value: []byte("v"), TS: int64(i)})
	}
}

func BenchmarkLSMGet(b *testing.B) {
	s := New(Options{Seed: 1})
	for i := 0; i < 10000; i++ {
		s.Apply(fmt.Sprintf("row%05d", i), "c", model.Cell{Value: []byte("v"), TS: int64(i)})
	}
	s.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(fmt.Sprintf("row%05d", i%10000), "c")
	}
}

// TestOlderRunHoldsNewestTimestamp guards the no-early-exit invariant:
// timestamps are client-supplied, so the newest run can hold an OLDER
// cell than a run flushed long before it. A read that stopped at the
// newest run containing the key would return the wrong value.
func TestOlderRunHoldsNewestTimestamp(t *testing.T) {
	s := New(Options{FlushBytes: 1 << 20, CompactAt: 100, Seed: 1})
	// First flush: the future-timestamped winner lands in the OLDEST run.
	s.Apply("row", "c", model.Cell{Value: []byte("winner"), TS: 100})
	s.Flush()
	// Later flushes hold older timestamps for the same key.
	s.Apply("row", "c", model.Cell{Value: []byte("stale-a"), TS: 10})
	s.Flush()
	s.Apply("row", "c", model.Cell{Value: []byte("stale-b"), TS: 20})
	s.Flush()
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("want >= 3 runs, have %d", st.Segments)
	}
	if c, ok := s.Get("row", "c"); !ok || string(c.Value) != "winner" || c.TS != 100 {
		t.Fatalf("Get = %v,%v; want the ts=100 winner from the oldest run", c, ok)
	}
	if row := s.GetRow("row"); string(row["c"].Value) != "winner" {
		t.Fatalf("GetRow = %v; want the ts=100 winner from the oldest run", row)
	}
	if row := s.GetColumns("row", []string{"c"}); string(row["c"].Value) != "winner" {
		t.Fatalf("GetColumns = %v; want the ts=100 winner from the oldest run", row)
	}
}

// TestReadsPruneRuns checks that point and row reads skip runs that
// cannot contain the key and count the skips.
func TestReadsPruneRuns(t *testing.T) {
	s := New(Options{FlushBytes: 1 << 20, CompactAt: 100, Seed: 1})
	// Three disjoint runs over different rows.
	for r := 0; r < 3; r++ {
		for i := 0; i < 50; i++ {
			s.Apply(fmt.Sprintf("run%d-row%03d", r, i), "c", model.Cell{Value: []byte("v"), TS: int64(i)})
		}
		s.Flush()
	}
	if c, ok := s.Get("run1-row007", "c"); !ok || string(c.Value) != "v" {
		t.Fatalf("Get = %v,%v", c, ok)
	}
	st := s.Stats()
	if st.RunsPrunedPoint == 0 {
		t.Fatalf("point read over disjoint runs pruned nothing: %+v", st)
	}
	if row := s.GetRow("run2-row011"); len(row) != 1 {
		t.Fatalf("GetRow = %v", row)
	}
	if st := s.Stats(); st.RunsPrunedRow == 0 {
		t.Fatalf("row read over disjoint runs pruned nothing: %+v", st)
	}
}
