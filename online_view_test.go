package vstore_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"vstore"
)

// backfillKeys is the population size for online-backfill tests.
// MV_BACKFILL_KEYS overrides it (set 1048576 for the paper-scale
// million-key run; the default keeps `go test` fast).
func backfillKeys() int {
	if s := os.Getenv("MV_BACKFILL_KEYS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 2000
}

func populateTickets(t *testing.T, db *vstore.DB, n int) {
	t.Helper()
	// No deadline: the million-key run outlives ctxT's budget, and every
	// Put is individually bounded by the cluster request timeout.
	ctx := context.Background()
	for i := 0; i < n; i++ {
		c := db.Client(i % db.Nodes())
		err := c.Put(ctx, "ticket", fmt.Sprintf("t%06d", i), vstore.Values{
			"assignedto": fmt.Sprintf("user%02d", i%17),
			"status":     fmt.Sprintf("s%d", i%3),
		})
		if err != nil {
			t.Fatalf("populate %d: %v", i, err)
		}
	}
}

// TestCreateViewOnPopulatedTable is the headline online-backfill flow:
// define a view after the base table already holds data, and require
// the backfilled view to be cell-identical to a from-birth view of the
// same definition.
func TestCreateViewOnPopulatedTable(t *testing.T) {
	db := openDB(t, vstore.Config{})
	if err := db.CreateTable("ticket"); err != nil {
		t.Fatal(err)
	}
	// Control: a view that exists from birth and sees every write.
	if err := db.CreateView(vstore.ViewDef{
		Name: "frombirth", Base: "ticket",
		ViewKey: "assignedto", Materialized: []string{"status"},
	}); err != nil {
		t.Fatal(err)
	}
	n := backfillKeys()
	populateTickets(t, db, n)

	// The backfilled view: defined only after the table is populated.
	if err := db.CreateView(vstore.ViewDef{
		Name: "backfilled", Base: "ticket",
		ViewKey: "assignedto", Materialized: []string{"status"},
	}); err != nil {
		t.Fatal(err)
	}
	if st, err := db.ViewState("backfilled"); err != nil || st != vstore.ViewLive {
		t.Fatalf("state after CreateView = %q, %v; want live", st, err)
	}
	if err := db.QuiesceViews(ctxT(t)); err != nil {
		t.Fatal(err)
	}

	c := db.Client(0)
	total := 0
	for u := 0; u < 17; u++ {
		user := fmt.Sprintf("user%02d", u)
		want, err := c.GetView(ctxT(t), "frombirth", user)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.GetView(ctxT(t), "backfilled", user)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("user %s: backfilled has %d rows, from-birth %d", user, len(got), len(want))
		}
		byKey := map[string]vstore.ViewRow{}
		for _, r := range want {
			byKey[r.BaseKey] = r
		}
		for _, r := range got {
			w, ok := byKey[r.BaseKey]
			if !ok {
				t.Fatalf("user %s: backfilled row %s absent from from-birth view", user, r.BaseKey)
			}
			for col, cell := range r.Columns {
				wc, ok := w.Columns[col]
				if !ok || string(wc.Value) != string(cell.Value) {
					t.Fatalf("user %s row %s col %s: backfilled %q vs from-birth %q",
						user, r.BaseKey, col, cell.Value, wc.Value)
				}
			}
		}
		total += len(got)
	}
	if total != n {
		t.Fatalf("backfilled view holds %d rows across all keys, want %d", total, n)
	}
}

// TestBackfillDoesNotBlockWrites: while a view is Backfilling, base
// Puts must keep succeeding, and writes landed during the scan must
// end up in the view.
func TestBackfillDoesNotBlockWrites(t *testing.T) {
	db := openDB(t, vstore.Config{Views: vstore.ViewOptions{
		BackfillBatchSize: 16,
		BackfillThrottle:  5 * time.Millisecond,
	}})
	if err := db.CreateTable("ticket"); err != nil {
		t.Fatal(err)
	}
	populateTickets(t, db, 400)

	if err := db.CreateViewAsync(vstore.ViewDef{
		Name: "assignedto", Base: "ticket",
		ViewKey: "assignedto", Materialized: []string{"status"},
	}); err != nil {
		t.Fatal(err)
	}
	if st, err := db.ViewState("assignedto"); err != nil || st != vstore.ViewBackfilling {
		t.Fatalf("state right after async create = %q, %v; want backfilling", st, err)
	}

	// Race live writes against the scan: a fresh key and an overwrite
	// of an existing key, repeatedly, while checking the Puts stay fast.
	c := db.Client(1)
	raced := 0
	for i := 0; i < 200; i++ {
		if st, _ := db.ViewState("assignedto"); st != vstore.ViewBackfilling {
			break
		}
		start := time.Now()
		if err := c.Put(ctxT(t), "ticket", fmt.Sprintf("live%04d", i), vstore.Values{
			"assignedto": "racer", "status": "open",
		}); err != nil {
			t.Fatalf("live Put during backfill: %v", err)
		}
		if err := c.Put(ctxT(t), "ticket", fmt.Sprintf("t%06d", i), vstore.Values{
			"assignedto": "racer", "status": "moved",
		}); err != nil {
			t.Fatalf("live overwrite during backfill: %v", err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("Put blocked for %v during backfill", d)
		}
		raced = i + 1
	}
	if raced == 0 {
		t.Skip("backfill finished before any write raced it; nothing to assert")
	}
	if err := db.WaitViewLive(ctxT(t), "assignedto"); err != nil {
		t.Fatal(err)
	}
	if err := db.QuiesceViews(ctxT(t)); err != nil {
		t.Fatal(err)
	}

	rows, err := c.GetView(ctxT(t), "assignedto", "racer")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*raced {
		t.Fatalf("racer group has %d rows, want %d (raced %d fresh + %d moved keys)",
			len(rows), 2*raced, raced, raced)
	}
	for _, r := range rows {
		want := "open"
		if r.BaseKey[0] == 't' {
			want = "moved"
		}
		if string(r.Columns["status"].Value) != want {
			t.Fatalf("row %s status = %q, want %q (live write must beat backfill)",
				r.BaseKey, r.Columns["status"].Value, want)
		}
	}
	// The overwritten keys must have left their old groups.
	for u := 0; u < 17; u++ {
		rows, err := c.GetView(ctxT(t), "assignedto", fmt.Sprintf("user%02d", u))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			var i int
			if _, err := fmt.Sscanf(r.BaseKey, "t%06d", &i); err == nil && i < raced {
				t.Fatalf("moved key %s still in old group user%02d", r.BaseKey, u)
			}
		}
	}
}

// TestDropViewAndRecreate: drop removes the view (reads fail), and a
// re-create with the same name backfills from scratch to the current
// base contents.
func TestDropViewAndRecreate(t *testing.T) {
	db := openTickets(t, vstore.Config{})
	c := db.Client(0)
	for i := 0; i < 50; i++ {
		if err := c.Put(ctxT(t), "ticket", fmt.Sprint(i), vstore.Values{
			"assignedto": "alice", "status": "open",
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.QuiesceViews(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	if err := db.DropView("assignedto"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetView(ctxT(t), "assignedto", "alice"); err == nil {
		t.Fatal("GetView on a dropped view succeeded")
	}
	if _, err := db.ViewState("assignedto"); err == nil {
		t.Fatal("ViewState on a dropped view succeeded")
	}
	// Base writes keep working with the view gone.
	if err := c.Put(ctxT(t), "ticket", "50", vstore.Values{
		"assignedto": "alice", "status": "open",
	}); err != nil {
		t.Fatal(err)
	}
	// Re-create: must backfill all 51 current keys.
	if err := db.CreateView(vstore.ViewDef{
		Name: "assignedto", Base: "ticket",
		ViewKey: "assignedto", Materialized: []string{"status"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.QuiesceViews(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	rows, err := c.GetView(ctxT(t), "assignedto", "alice")
	if err != nil || len(rows) != 51 {
		t.Fatalf("re-created view has %d rows, %v; want 51", len(rows), err)
	}
}

// TestBackfillCrashResume: closing the store mid-backfill and
// reopening from the same backend must resume the scan from its
// checkpoint and still converge to a complete view.
func TestBackfillCrashResume(t *testing.T) {
	b := vstore.MemBackend()
	db, err := vstore.Open(vstore.Config{Backend: b, Views: vstore.ViewOptions{
		BackfillBatchSize: 8,
		BackfillThrottle:  10 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("ticket"); err != nil {
		t.Fatal(err)
	}
	populateTickets(t, db, 300)
	if err := db.CreateViewAsync(vstore.ViewDef{
		Name: "assignedto", Base: "ticket",
		ViewKey: "assignedto", Materialized: []string{"status"},
	}); err != nil {
		t.Fatal(err)
	}
	// Let the scan make some progress, then "crash".
	time.Sleep(50 * time.Millisecond)
	db.Close()

	db2, err := vstore.Open(vstore.Config{Backend: b})
	if err != nil {
		t.Fatalf("reopen mid-backfill: %v", err)
	}
	defer db2.Close()
	if err := db2.WaitViewLive(ctxT(t), "assignedto"); err != nil {
		t.Fatal(err)
	}
	lc := db2.Stats().Views.Lifecycle["assignedto"]
	if lc.State != vstore.ViewLive {
		t.Fatalf("lifecycle after resume = %+v, want live", lc)
	}
	if err := db2.QuiesceViews(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	c := db2.Client(0)
	total := 0
	for u := 0; u < 17; u++ {
		rows, err := c.GetView(ctxT(t), "assignedto", fmt.Sprintf("user%02d", u))
		if err != nil {
			t.Fatal(err)
		}
		total += len(rows)
	}
	if total != 300 {
		t.Fatalf("resumed view holds %d rows, want 300", total)
	}
}

// TestWithMaxStaleness covers the bounded-staleness decision table.
func TestWithMaxStaleness(t *testing.T) {
	t.Run("backfilling rejects", func(t *testing.T) {
		db := openDB(t, vstore.Config{Views: vstore.ViewOptions{
			BackfillBatchSize: 4,
			BackfillThrottle:  20 * time.Millisecond,
		}})
		if err := db.CreateTable("ticket"); err != nil {
			t.Fatal(err)
		}
		populateTickets(t, db, 200)
		if err := db.CreateViewAsync(vstore.ViewDef{
			Name: "assignedto", Base: "ticket",
			ViewKey: "assignedto", Materialized: []string{"status"},
		}); err != nil {
			t.Fatal(err)
		}
		if st, _ := db.ViewState("assignedto"); st != vstore.ViewBackfilling {
			t.Skip("backfill finished before the read; cannot exercise the reject path")
		}
		_, err := db.Client(0).GetView(ctxT(t), "assignedto", "user00", vstore.WithMaxStaleness(time.Second))
		if !errors.Is(err, vstore.ErrViewBackfilling) || !errors.Is(err, vstore.ErrTooStale) {
			t.Fatalf("GetView during backfill = %v, want ErrViewBackfilling wrapping ErrTooStale", err)
		}
	})

	t.Run("fresh serves", func(t *testing.T) {
		db := openTickets(t, vstore.Config{})
		c := db.Client(0)
		if err := c.Put(ctxT(t), "ticket", "1", vstore.Values{"assignedto": "alice", "status": "open"}); err != nil {
			t.Fatal(err)
		}
		if err := db.QuiesceViews(ctxT(t)); err != nil {
			t.Fatal(err)
		}
		rows, err := c.GetView(ctxT(t), "assignedto", "alice", vstore.WithMaxStaleness(time.Millisecond))
		if err != nil || len(rows) != 1 {
			t.Fatalf("fresh GetView = %v, %v; want the row", rows, err)
		}
	})

	t.Run("stale rejects after the bound", func(t *testing.T) {
		db := openTickets(t, vstore.Config{Views: vstore.ViewOptions{
			PropagationDelay: func() time.Duration { return 2 * time.Second },
		}})
		c := db.Client(0)
		if err := c.Put(ctxT(t), "ticket", "1", vstore.Values{"assignedto": "alice", "status": "open"}); err != nil {
			t.Fatal(err)
		}
		// Let the pending propagation age well past the bound.
		time.Sleep(200 * time.Millisecond)
		start := time.Now()
		_, err := c.GetView(ctxT(t), "assignedto", "alice", vstore.WithMaxStaleness(50*time.Millisecond))
		if !errors.Is(err, vstore.ErrTooStale) {
			t.Fatalf("stale GetView = %v, want ErrTooStale", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("reject took %v, want roughly the 50ms bound", d)
		}
	})

	t.Run("waits for propagation within the bound", func(t *testing.T) {
		db := openTickets(t, vstore.Config{Views: vstore.ViewOptions{
			PropagationDelay: func() time.Duration { return 150 * time.Millisecond },
		}})
		c := db.Client(0)
		if err := c.Put(ctxT(t), "ticket", "1", vstore.Values{"assignedto": "alice", "status": "open"}); err != nil {
			t.Fatal(err)
		}
		// Age the pending propagation past the bound so the session
		// must wait, but let it complete inside the poll window.
		time.Sleep(100 * time.Millisecond)
		rows, err := c.GetView(ctxT(t), "assignedto", "alice", vstore.WithMaxStaleness(80*time.Millisecond))
		if err != nil || len(rows) != 1 {
			t.Fatalf("bounded-wait GetView = %v, %v; want the row after the propagation lands", rows, err)
		}
	})
}
