package vstore_test

import (
	"fmt"
	"testing"
	"time"

	"vstore"
)

func TestSelectionViewEndToEnd(t *testing.T) {
	db := openDB(t, vstore.Config{})
	if err := db.CreateTable("orders"); err != nil {
		t.Fatal(err)
	}
	// Only large orders materialize into the view.
	err := db.CreateView(vstore.ViewDef{
		Name:         "big_orders",
		Base:         "orders",
		ViewKey:      "bucket",
		Materialized: []string{"total"},
		Selection:    &vstore.Selection{Prefix: "big-"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := db.Client(0)
	ctx := ctxT(t)
	if err := c.Put(ctx, "orders", "o1", vstore.Values{"bucket": "big-eu", "total": "900"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, "orders", "o2", vstore.Values{"bucket": "small-eu", "total": "3"}); err != nil {
		t.Fatal(err)
	}
	if err := db.QuiesceViews(ctx); err != nil {
		t.Fatal(err)
	}
	rows, err := c.GetView(ctx, "big_orders", "big-eu")
	if err != nil || len(rows) != 1 || string(rows[0].Columns["total"].Value) != "900" {
		t.Fatalf("big-eu rows = %v, %v", rows, err)
	}
	if rows, _ := c.GetView(ctx, "big_orders", "small-eu"); len(rows) != 0 {
		t.Fatalf("selection leaked: %v", rows)
	}
	// Invalid selections are rejected at definition time.
	err = db.CreateView(vstore.ViewDef{Name: "v2", Base: "orders", ViewKey: "bucket", Selection: &vstore.Selection{Min: "z", Max: "a"}})
	if err == nil {
		t.Fatal("inverted selection accepted")
	}
}

func TestPruneViewEndToEnd(t *testing.T) {
	db := openTickets(t, vstore.Config{})
	c := db.Client(0)
	ctx := ctxT(t)
	for i := 0; i < 8; i++ {
		if err := c.Put(ctx, "ticket", "hot", vstore.Values{"assignedto": fmt.Sprintf("u%d", i)}); err != nil {
			t.Fatal(err)
		}
		if err := db.QuiesceViews(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Everything was superseded "now"; a large olderThan prunes nothing.
	removed, err := db.PruneView(ctx, "assignedto", time.Hour)
	if err != nil || removed != 0 {
		t.Fatalf("removed=%d err=%v", removed, err)
	}
	// Horizon in the future (raw) prunes the stale rows.
	removed, err = db.PruneViewBefore(ctx, "assignedto", time.Now().Add(time.Hour).UnixMicro())
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("nothing pruned")
	}
	rows, err := c.GetView(ctx, "assignedto", "u7")
	if err != nil || len(rows) != 1 {
		t.Fatalf("live row lost: %v %v", rows, err)
	}
	if _, err := db.PruneView(ctx, "ghost", time.Hour); err == nil {
		t.Fatal("prune of unknown view accepted")
	}
}

func TestRebuildViewEndToEnd(t *testing.T) {
	db := openTickets(t, vstore.Config{
		// Make propagations give up instantly so updates get lost.
		Views: vstore.ViewOptions{MaxPropagationRetry: time.Nanosecond},
	})
	c := db.Client(0)
	ctx := ctxT(t)
	if err := c.Put(ctx, "ticket", "1", vstore.Values{"assignedto": "amy", "status": "open"}); err != nil {
		t.Fatal(err)
	}
	if err := db.QuiesceViews(ctx); err != nil {
		t.Fatal(err)
	}
	// The abandoned propagation left the view empty.
	if st := db.Stats(); st.Views.PropagationsDropped == 0 {
		t.Skip("propagation survived the nanosecond budget; nothing to rebuild")
	}
	if rows, _ := c.GetView(ctx, "assignedto", "amy"); len(rows) != 0 {
		t.Fatal("precondition: view should have lost the update")
	}
	if err := db.RebuildView(ctx, "assignedto"); err != nil {
		t.Fatal(err)
	}
	rows, err := c.GetView(ctx, "assignedto", "amy")
	if err != nil || len(rows) != 1 || string(rows[0].Columns["status"].Value) != "open" {
		t.Fatalf("after rebuild: %v %v", rows, err)
	}
	if err := db.RebuildView(ctx, "ghost"); err == nil {
		t.Fatal("rebuild of unknown view accepted")
	}
}

func TestDiagnoseView(t *testing.T) {
	db := openTickets(t, vstore.Config{})
	c := db.Client(0)
	ctx := ctxT(t)
	// No structure yet.
	d, err := db.DiagnoseView("assignedto")
	if err != nil || d.LiveRows != 0 || d.StaleRows != 0 {
		t.Fatalf("empty view diagnostics = %+v, %v", d, err)
	}
	if _, err := db.DiagnoseView("ghost"); err == nil {
		t.Fatal("diagnose of unknown view accepted")
	}
	// Three reassignments of one ticket: 1 live row, stale rows for
	// the two superseded keys plus the chain anchor.
	for i := 0; i < 3; i++ {
		if err := c.Put(ctx, "ticket", "1", vstore.Values{"assignedto": fmt.Sprintf("u%d", i)}); err != nil {
			t.Fatal(err)
		}
		if err := db.QuiesceViews(ctx); err != nil {
			t.Fatal(err)
		}
	}
	d, err = db.DiagnoseView("assignedto")
	if err != nil {
		t.Fatal(err)
	}
	if d.LiveRows != 1 || d.StaleRows != 3 {
		t.Fatalf("diagnostics = %+v, want 1 live / 3 stale", d)
	}
	if d.MaxChainLength < 1 || d.MeanChainHops <= 0 {
		t.Fatalf("chain stats missing: %+v", d)
	}
	if d.OldestStaleAge <= 0 || d.OldestStaleAge > time.Hour {
		t.Fatalf("implausible stale age: %v", d.OldestStaleAge)
	}
	// Deleting the view key marks the live row.
	if err := c.Delete(ctx, "ticket", "1", "assignedto"); err != nil {
		t.Fatal(err)
	}
	if err := db.QuiesceViews(ctx); err != nil {
		t.Fatal(err)
	}
	d, _ = db.DiagnoseView("assignedto")
	if d.DeletedRows != 1 {
		t.Fatalf("deleted rows = %d, want 1 (%+v)", d.DeletedRows, d)
	}
	// Prune shrinks the structure; diagnostics reflect it.
	if _, err := db.PruneViewBefore(ctx, "assignedto", time.Now().Add(time.Hour).UnixMicro()); err != nil {
		t.Fatal(err)
	}
	after, _ := db.DiagnoseView("assignedto")
	if after.StaleRows >= d.StaleRows {
		t.Fatalf("prune did not shrink stale rows: %+v -> %+v", d, after)
	}
}
