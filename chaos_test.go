package vstore_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"vstore"
)

// chaosSeed returns the seed for a chaos test: MV_SEED when set (the
// replay knob shared with internal/sim and cmd/mvverify), else the
// test's stable default. The chosen seed is logged so any failure can
// be replayed with MV_SEED=<seed>.
func chaosSeed(t *testing.T, fallback int64) int64 {
	t.Helper()
	seed := fallback
	if s := os.Getenv("MV_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad MV_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("seed %d (replay: MV_SEED=%d go test -run %s)", seed, seed, t.Name())
	return seed
}

// TestChaosConvergence drives concurrent view-key updates while nodes
// crash and recover, then verifies the end state: after healing,
// anti-entropy, quiescence and a rebuild, the view agrees exactly with
// the base table (Definition 1), every row under exactly one key.
func TestChaosConvergence(t *testing.T) {
	const (
		nodes   = 4
		rows    = 30
		keys    = 6
		writers = 6
		rounds  = 40
	)
	seed := chaosSeed(t, 7)
	db := openDB(t, vstore.Config{
		Nodes:          nodes,
		RequestTimeout: 300 * time.Millisecond,
		Views:          vstore.ViewOptions{MaxPropagationRetry: 2 * time.Second},
	})
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView(vstore.ViewDef{Name: "v", Base: "t", ViewKey: "k", Materialized: []string{"m"}}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Chaos: one goroutine keeps bouncing a node while writers write.
	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		r := rand.New(rand.NewSource(seed))
		for {
			select {
			case <-stopChaos:
				return
			default:
			}
			victim := r.Intn(nodes)
			db.SetNodeDown(victim, true)
			time.Sleep(time.Duration(r.Intn(40)) * time.Millisecond)
			db.SetNodeDown(victim, false)
			time.Sleep(time.Duration(r.Intn(20)) * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + 1 + int64(w)))
			c := db.Client(w)
			for i := 0; i < rounds; i++ {
				row := fmt.Sprintf("row-%d", r.Intn(rows))
				vals := vstore.Values{
					"k": fmt.Sprintf("key-%d", r.Intn(keys)),
					"m": fmt.Sprintf("m-%d-%d", w, i),
				}
				// Failures are expected under chaos (quorum may be
				// unreachable); partial application is repaired later.
				_ = c.Put(ctx, "t", row, vals)
			}
		}(w)
	}
	wg.Wait()
	close(stopChaos)
	chaosWG.Wait()

	// Heal and converge.
	for i := 0; i < nodes; i++ {
		db.SetNodeDown(i, false)
	}
	if err := db.QuiesceViews(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		db.RunAntiEntropy()
	}
	if err := db.RebuildView(ctx, "v"); err != nil {
		t.Fatal(err)
	}

	// Ground truth from the base table (full-quorum reads).
	c := db.Client(0)
	type truth struct{ key, m string }
	want := map[string]truth{}
	for i := 0; i < rows; i++ {
		row := fmt.Sprintf("row-%d", i)
		got, err := c.GetRow(ctx, "t", row, vstore.WithReadQuorum(nodes))
		if err != nil {
			t.Fatal(err)
		}
		if k, ok := got["k"]; ok {
			want[row] = truth{key: string(k.Value), m: string(got["m"].Value)}
		}
	}
	if len(want) == 0 {
		t.Fatal("chaos killed every write; nothing to verify")
	}

	// The view must show each base row under exactly its current key,
	// with the current materialized value.
	seen := map[string]bool{}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		vrows, err := c.GetView(ctx, "v", key, vstore.WithReadQuorum(nodes))
		if err != nil {
			t.Fatal(err)
		}
		for _, vr := range vrows {
			tr, ok := want[vr.BaseKey]
			if !ok {
				t.Fatalf("view shows unknown base row %q", vr.BaseKey)
			}
			if tr.key != key {
				t.Fatalf("base row %q visible under %q, base says %q", vr.BaseKey, key, tr.key)
			}
			if got := string(vr.Columns["m"].Value); got != tr.m {
				t.Fatalf("base row %q materialized %q, base says %q", vr.BaseKey, got, tr.m)
			}
			if seen[vr.BaseKey] {
				t.Fatalf("base row %q visible under two keys", vr.BaseKey)
			}
			seen[vr.BaseKey] = true
		}
	}
	for row, tr := range want {
		if !seen[row] {
			t.Fatalf("base row %q (key %q) missing from the view", row, tr.key)
		}
	}
}

// TestDroppyNetworkStillConverges runs view maintenance over a fabric
// that silently drops a fraction of messages; retries, read repair and
// anti-entropy must still converge the views.
func TestDroppyNetworkStillConverges(t *testing.T) {
	db := openDB(t, vstore.Config{
		Network:        &vstore.NetworkSim{Latency: 100 * time.Microsecond, DropProb: 0.03},
		RequestTimeout: 250 * time.Millisecond,
		Views:          vstore.ViewOptions{MaxPropagationRetry: 30 * time.Second},
		Seed:           chaosSeed(t, 3),
	})
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView(vstore.ViewDef{Name: "v", Base: "t", ViewKey: "k"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := db.Client(0)
	okRows := map[string]string{}
	for i := 0; i < 60; i++ {
		row := fmt.Sprintf("r%d", i%15)
		key := fmt.Sprintf("k%d", i%4)
		if err := c.Put(ctx, "t", row, vstore.Values{"k": key}); err != nil {
			// Dropped past quorum. The write may STILL have reached
			// some replica and win LWW later (it is the row's newest
			// timestamp), so the row's final key is indeterminate:
			// exclude it from verification.
			delete(okRows, row)
			continue
		}
		okRows[row] = key
	}
	if err := db.QuiesceViews(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		db.RunAntiEntropy()
	}
	if len(okRows) == 0 {
		t.Fatal("every write dropped")
	}
	// Retries normally push every propagation through the lossy
	// fabric; if one did exhaust its budget (possible under heavy CPU
	// contention), RebuildView is the system's designed recovery and
	// the view must be exact afterwards.
	if db.Stats().Views.PropagationsDropped > 0 {
		if err := db.RebuildView(ctx, "v"); err != nil {
			t.Fatal(err)
		}
	}
	// Each successfully acked row must be visible under its latest
	// acked key or a newer unacked one; with a single sequential writer
	// the latest acked key IS the newest write that could exist, so
	// equality must hold.
	for row, key := range okRows {
		// The verification read runs over the same droppy fabric, so
		// it may itself fail quorum; retry it.
		var rows []vstore.ViewRow
		var err error
		for attempt := 0; attempt < 10; attempt++ {
			rows, err = c.GetView(ctx, "v", key)
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, vr := range rows {
			if vr.BaseKey == row {
				found = true
			}
		}
		if !found {
			t.Fatalf("row %q missing under its key %q", row, key)
		}
	}
}
