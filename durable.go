package vstore

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"vstore/internal/backfill"
	"vstore/internal/core"
	"vstore/internal/model"
	"vstore/internal/physical"
	physfs "vstore/internal/physical/fs"
	physmem "vstore/internal/physical/mem"
	"vstore/internal/wal"
)

// This file is the durable face of the DB: the public storage backend
// and fsync knobs, the SCHEMA.json file that makes table/view/index
// definitions survive a restart, the adapter that feeds propagation
// intents into each node's write-ahead log, and the recovery pass that
// finishes what a crashed process left pending. The per-node mechanics
// (segmented WALs, run files, MANIFESTs) live in internal/wal over
// internal/physical; node state is rebuilt by cluster.Open before any
// code here runs.

// Backend is the physical storage a durable DB runs on: a narrow
// interface (exclusive create, append, fsync, whole-file read, atomic
// replace, list, remove) every byte of durable state goes through. See
// internal/physical for the exact contract implementations must keep.
type Backend = physical.Backend

// FSBackend returns a Backend on the real filesystem rooted at dir —
// exactly what Config.Dir constructs. The on-disk layout matches what
// pre-backend versions of this package wrote, so existing directories
// reopen unchanged.
func FSBackend(dir string) Backend { return physfs.New(dir) }

// MemBackend returns a hermetic in-memory Backend: the full durable
// machinery — WALs, sstable runs, recovery — without touching a disk.
// State lives exactly as long as the value, so "reopening" a store
// means passing the same Backend to Open again; tests use this to
// exercise crash recovery deterministically.
func MemBackend() Backend { return physmem.New() }

// FsyncPolicy selects how aggressively durable writes reach disk.
type FsyncPolicy int

const (
	// FsyncInterval (the default) fsyncs WALs on a background ticker;
	// a crash can lose up to one interval of acknowledged writes, but
	// the log is always prefix-consistent.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs before every write acknowledges, amortized by
	// group commit: concurrent writers share one fsync.
	FsyncAlways
	// FsyncOff never fsyncs during operation; the OS still writes
	// pages back, and clean shutdown syncs everything.
	FsyncOff
)

func (p FsyncPolicy) wal() wal.SyncPolicy {
	switch p {
	case FsyncAlways:
		return wal.SyncAlways
	case FsyncOff:
		return wal.SyncOff
	default:
		return wal.SyncInterval
	}
}

// String names the policy like the flag values cmd/mvserver accepts.
func (p FsyncPolicy) String() string { return p.wal().String() }

// DurabilityOptions tunes the per-node write-ahead logs when the
// store is durable (Config.Backend or Config.Dir set). The zero value
// fsyncs every 50ms and rotates 4 MiB segments.
type DurabilityOptions struct {
	// Fsync is the WAL sync policy.
	Fsync FsyncPolicy
	// FsyncInterval is the ticker period under FsyncInterval.
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation threshold; it also
	// bounds how large the propagation-intent log grows before being
	// checkpointed down to the pending set.
	SegmentBytes int64
}

// RecoveryStats summarizes what a durable Open restored before the DB
// began serving. Zero in memory mode.
type RecoveryStats struct {
	// Nodes is how many nodes had durable state to recover.
	Nodes int `json:"nodes"`
	// Tables and Runs count recovered table states and sstable runs.
	Tables int `json:"tables"`
	Runs   int `json:"runs"`
	// SegmentsReplayed / RecordsReplayed / BytesReplayed cover the WAL
	// tails re-applied to memtables plus the intent logs.
	SegmentsReplayed int   `json:"segments_replayed"`
	RecordsReplayed  int   `json:"records_replayed"`
	BytesReplayed    int64 `json:"bytes_replayed"`
	// TornTails counts logs whose final record was incomplete (the
	// expected signature of a crash mid-append; the tail is dropped).
	TornTails int `json:"torn_tails"`
	// IntentsPending is how many propagation intents were logged as
	// started but not finished; IntentsReenqueued how many of those
	// recovery managed to re-schedule (the rest stay pending on disk
	// for the next Open).
	IntentsPending    int `json:"intents_pending"`
	IntentsReenqueued int `json:"intents_reenqueued"`
	// Duration is wall time from Open start to recovery complete.
	Duration time.Duration `json:"duration_ns"`
}

// RecoveryStats reports what this DB restored at Open.
func (db *DB) RecoveryStats() RecoveryStats { return db.recovery }

// intentLog adapts one node's wal.Storage to core.IntentLog, so the
// view manager can make propagation intents durable without knowing
// the log format.
type intentLog struct{ s *wal.Storage }

func (il intentLog) NextIntentID() uint64 { return il.s.NextIntentID() }

func (il intentLog) LogStart(id uint64, table, row string, updates []model.ColumnUpdate) error {
	return il.s.LogIntentStart(wal.Intent{ID: id, Table: table, Row: row, Updates: updates})
}

func (il intentLog) LogDone(id uint64) error { return il.s.LogIntentDone(id) }

// --- Schema persistence -----------------------------------------------------

// clusterSchema is the serializable schema — base tables, view and
// join-view definitions, secondary indexes — shared by snapshot
// manifests and the durable SCHEMA.json.
type clusterSchema struct {
	Tables  []string
	Views   []manifestView
	Joins   []manifestJoin
	Indexes map[string][]string `json:",omitempty"`
	// PendingDrops lists views whose storage teardown was in flight
	// when the schema was written; recovery re-executes them (node
	// drops are idempotent) so a crash mid-drop cannot resurrect old
	// view rows. Absent in schemas written before online view drops.
	PendingDrops []string `json:",omitempty"`
}

// schemaDoc is the SCHEMA.json file at a Config.Dir root.
type schemaDoc struct {
	FormatVersion int
	clusterSchema
}

const (
	schemaFileName      = "SCHEMA.json"
	schemaFormatVersion = 1
)

// currentSchema captures the DB's schema for persistence, including
// each view's lifecycle state and any in-flight view drops.
func (db *DB) currentSchema() clusterSchema {
	var s clusterSchema
	views := map[string]bool{}
	lifecycle := func(name string) string {
		if st, ok := db.bf.State(name); ok && st == backfill.StateBackfilling {
			return string(st)
		}
		return "" // live — the zero value, so pre-backfill schemas read identically
	}
	for _, name := range db.registry.ViewNames() {
		views[name] = true
		defs := db.registry.Defs(name)
		switch len(defs) {
		case 1:
			d := defs[0]
			mv := manifestView{Def: ViewDef{
				Name: d.Name, Base: d.Base, ViewKey: d.ViewKeyColumn,
				Materialized: append([]string(nil), d.Materialized...),
			}, State: lifecycle(name)}
			if d.Selection != nil {
				mv.Def.Selection = &Selection{Prefix: d.Selection.Prefix, Min: d.Selection.Min, Max: d.Selection.Max}
			}
			s.Views = append(s.Views, mv)
		case 2:
			mj := manifestJoin{Def: JoinViewDef{Name: name}, State: lifecycle(name)}
			sides := []*JoinSide{&mj.Def.Left, &mj.Def.Right}
			for i, d := range defs {
				sides[i].Base = d.Base
				sides[i].On = d.ViewKeyColumn
				sides[i].Materialized = append([]string(nil), d.Materialized...)
				if d.Selection != nil {
					sides[i].Selection = &Selection{Prefix: d.Selection.Prefix, Min: d.Selection.Min, Max: d.Selection.Max}
				}
			}
			s.Joins = append(s.Joins, mj)
		}
	}
	for _, t := range db.cluster.Tables() {
		if !views[t] {
			s.Tables = append(s.Tables, t)
		}
	}
	if idx := db.cluster.Indexes(); len(idx) > 0 {
		s.Indexes = idx
	}
	db.dropMu.Lock()
	s.PendingDrops = append([]string(nil), db.pendingDrops...)
	db.dropMu.Unlock()
	return s
}

// persistSchema atomically rewrites SCHEMA.json; a no-op in memory
// mode. Called after every schema mutation so a crash never forgets a
// created table, view or index. Atomicity, durability, and temp-file
// cleanup on error are the backend's WriteFileAtomic contract (the
// hand-rolled temp+rename this replaces leaked unchecked Close calls
// on its error paths).
func (db *DB) persistSchema() error {
	if db.backend == nil {
		return nil
	}
	// Serialized end-to-end: concurrent writers (DropView, the backfill
	// OnLive callback) must not let an older schema snapshot overwrite
	// a newer one.
	db.schemaMu.Lock()
	defer db.schemaMu.Unlock()
	doc := schemaDoc{FormatVersion: schemaFormatVersion, clusterSchema: db.currentSchema()}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return db.backend.WriteFileAtomic(schemaFileName, data)
}

// toCoreDef converts a public view definition for the registry.
func toCoreDef(d ViewDef) core.Def {
	cd := core.Def{Name: d.Name, Base: d.Base, ViewKeyColumn: d.ViewKey, Materialized: d.Materialized}
	if d.Selection != nil {
		cd.Selection = &core.Selection{Prefix: d.Selection.Prefix, Min: d.Selection.Min, Max: d.Selection.Max}
	}
	return cd
}

// toCoreJoin converts a public join-view definition for the registry.
func toCoreJoin(d JoinViewDef) core.JoinDef {
	side := func(s JoinSide) core.JoinSide {
		cs := core.JoinSide{Base: s.Base, On: s.On, Materialized: s.Materialized}
		if s.Selection != nil {
			cs.Selection = &core.Selection{Prefix: s.Selection.Prefix, Min: s.Selection.Min, Max: s.Selection.Max}
		}
		return cs
	}
	return core.JoinDef{Name: d.Name, Left: side(d.Left), Right: side(d.Right)}
}

// restoreSchemaTables registers all table names (phase one of a
// restore: storage loads must not trigger view maintenance, so
// definitions come later).
func (db *DB) restoreSchemaTables(s clusterSchema) error {
	for _, t := range s.Tables {
		if err := db.cluster.CreateTable(t); err != nil {
			return err
		}
	}
	for _, v := range s.Views {
		if err := db.cluster.CreateTable(v.Def.Name); err != nil {
			return err
		}
	}
	for _, j := range s.Joins {
		if err := db.cluster.CreateTable(j.Def.Name); err != nil {
			return err
		}
	}
	return nil
}

// restoreSchemaDefs registers view definitions and secondary indexes
// (phase two, after data is in place; index creation back-fills from
// the restored rows). Views recorded mid-backfill resume their scan —
// from the persisted checkpoint when the backend has one, from the
// start otherwise (resuming is always safe: fills are idempotent).
func (db *DB) restoreSchemaDefs(s clusterSchema) error {
	resume := func(name, state string) error {
		if state == string(backfill.StateBackfilling) {
			return db.startBackfill(name)
		}
		db.bf.Track(name)
		return nil
	}
	for _, v := range s.Views {
		if err := db.registry.Define(toCoreDef(v.Def)); err != nil {
			return err
		}
		if err := resume(v.Def.Name, v.State); err != nil {
			return err
		}
	}
	for _, j := range s.Joins {
		if err := db.registry.DefineJoin(toCoreJoin(j.Def)); err != nil {
			return err
		}
		if err := resume(j.Def.Name, j.State); err != nil {
			return err
		}
	}
	tables := make([]string, 0, len(s.Indexes))
	for t := range s.Indexes {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		for _, col := range s.Indexes[t] {
			if err := db.cluster.CreateIndex(t, col); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- Recovery ---------------------------------------------------------------

// replayTimeout bounds the quorum pre-read of each re-enqueued intent
// during recovery.
const replayTimeout = 30 * time.Second

// recoverDurable finishes a durable Open after cluster.Open has
// rebuilt node state from MANIFESTs, run files and WAL tails: restore
// the schema, wire each manager's intent log, and re-enqueue the
// propagation intents that were pending when the previous process
// stopped. Re-enqueueing is idempotent — propagation re-reads the base
// row and view state, and LWW timestamps make repeated applies
// converge — so an intent replayed twice (crash after propagation but
// before its done record synced) is harmless.
func (db *DB) recoverDurable(start time.Time) error {
	data, err := db.backend.ReadFile(schemaFileName)
	switch {
	case physical.IsNotExist(err):
		// Fresh backend: nothing to restore.
	case err != nil:
		return err
	default:
		var doc schemaDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("vstore: corrupt %s: %w", schemaFileName, err)
		}
		if doc.FormatVersion != schemaFormatVersion {
			return fmt.Errorf("vstore: unsupported schema format %d", doc.FormatVersion)
		}
		// Finish interrupted view drops before anything else: the
		// previous process committed to dropping these (their
		// definitions are already gone from the schema), so their
		// leftover storage — replayed into node memory by cluster.Open —
		// must go before a same-named view can be re-created. Node drops
		// are idempotent, so re-executing a partially completed drop is
		// safe.
		for _, name := range doc.PendingDrops {
			for _, n := range db.cluster.Nodes {
				if err := n.DropTable(name); err != nil {
					return fmt.Errorf("vstore: finishing interrupted drop of %q: %w", name, err)
				}
			}
		}
		if err := db.restoreSchemaTables(doc.clusterSchema); err != nil {
			return err
		}
		if err := db.restoreSchemaDefs(doc.clusterSchema); err != nil {
			return err
		}
		if len(doc.PendingDrops) > 0 {
			// Clear the finished drops from the schema file.
			if err := db.persistSchema(); err != nil {
				return err
			}
		}
	}

	for i, s := range db.cluster.Storages {
		if s != nil {
			db.managers[i].SetIntentLog(intentLog{s: s})
		}
	}
	for _, rec := range db.cluster.Recoveries {
		db.recovery.Nodes++
		db.recovery.Tables += rec.Stats.Tables
		db.recovery.Runs += rec.Stats.Runs
		db.recovery.SegmentsReplayed += rec.Stats.SegmentsReplayed
		db.recovery.RecordsReplayed += rec.Stats.RecordsReplayed
		db.recovery.BytesReplayed += rec.Stats.BytesReplayed
		db.recovery.TornTails += rec.Stats.TornTails
		db.recovery.IntentsPending += len(rec.Intents)
		storage := db.cluster.Storages[int(rec.Node)]
		mgr := db.managers[int(rec.Node)]
		for _, it := range rec.Intents {
			it := it
			ctx, cancel := context.WithTimeout(context.Background(), replayTimeout)
			err := mgr.Repropagate(ctx, it.Table, it.Row, it.Updates, func() {
				// Discarded deliberately: a failed done-mark leaves the
				// intent pending and the next Open retries it.
				_ = storage.LogIntentDone(it.ID)
			})
			cancel()
			if err != nil {
				// Nothing was scheduled; the intent survives in the log
				// and the next recovery retries it.
				continue
			}
			db.recovery.IntentsReenqueued++
		}
	}
	db.seedDotCounters()
	db.recovery.Duration = db.now().Sub(start)
	return nil
}

// seedDotCounters raises each coordinator's dot sequence above every
// dot recovered from durable state. A restarted coordinator that
// re-issued an already-used (node, seq) pair would name two different
// writes with one dot, silently breaking every causality judgement
// downstream; scanning both cell dots and context entries across all
// replicas gives the cluster-wide high-water mark per coordinator.
func (db *DB) seedDotCounters() {
	maxSeq := map[uint32]uint64{}
	note := func(c model.Cell) {
		if !c.Dot.IsZero() && c.Dot.Seq > maxSeq[c.Dot.Node] {
			maxSeq[c.Dot.Node] = c.Dot.Seq
		}
		for n, s := range c.Ctx {
			if s > maxSeq[n] {
				maxSeq[n] = s
			}
		}
	}
	for _, table := range db.cluster.Tables() {
		for _, n := range db.cluster.Nodes {
			for _, e := range n.TableSnapshot(table) {
				note(e.Cell)
			}
		}
	}
	for i := 0; i < db.cluster.Size(); i++ {
		db.cluster.Coordinator(i).SeedDotSeq(maxSeq[uint32(i)])
	}
}
