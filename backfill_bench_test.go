// Online-view benchmarks for `make bench-pr9`: the throughput of a
// CreateView backfill over an already-populated base table, and the
// MV-read tail latency while a backfill is racing the reads versus
// after the view has gone live. Recorded as BENCH_PR9.json.
package vstore_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"vstore"
)

// BenchmarkBackfillThroughput measures a full online backfill: each
// iteration defines a view over the populated base table, waits for
// Backfilling → Live, and drops it again. rows/s is the scan-and-fill
// rate the controller sustains with default batch/parallelism.
func BenchmarkBackfillThroughput(b *testing.B) {
	env := newBenchEnv(b, false, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := env.db.CreateView(vstore.ViewDef{
			Name: "bysec", Base: "data", ViewKey: "skey", Materialized: []string{"payload"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if st, err := env.db.ViewState("bysec"); err != nil || st != vstore.ViewLive {
			b.Fatalf("state after CreateView: %s, %v", st, err)
		}
		b.StopTimer()
		if err := env.db.DropView("bysec"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(benchRows*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// benchReadDuringBackfill reads the live "bysec" view b.N times; when
// racing is set, a second view backfills the same base table in the
// background for the whole loop (small pages, throttled so the scan
// outlasts the benchmark window), so the percentiles show what an
// online backfill costs concurrent MV readers.
func benchReadDuringBackfill(b *testing.B, racing bool) {
	db, err := vstore.Open(vstore.Config{Seed: 1, Storage: benchStorage, Views: vstore.ViewOptions{
		BackfillBatchSize: 16,
		BackfillThrottle:  20 * time.Millisecond,
	}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	ctx := context.Background()
	if err := db.CreateTable("data"); err != nil {
		b.Fatal(err)
	}
	c := db.Client(0)
	for i := 0; i < benchRows; i++ {
		if err := c.Put(ctx, "data", key(i), vstore.Values{"skey": sec(i), "payload": "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.CreateView(vstore.ViewDef{Name: "bysec", Base: "data", ViewKey: "skey", Materialized: []string{"payload"}}); err != nil {
		b.Fatal(err)
	}
	if racing {
		err := db.CreateViewAsync(vstore.ViewDef{Name: "race", Base: "data", ViewKey: "skey", Materialized: []string{"payload"}})
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := c.GetView(ctx, "bysec", sec(r.Intn(benchRows)), vstore.WithColumns("payload"))
		if err != nil || len(rows) != 1 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
	b.StopTimer()
	reportPercentiles(b, db, viewLatency)
	if racing {
		if st, err := db.ViewState("race"); err == nil && st == vstore.ViewBackfilling {
			if err := db.DropView("race"); err != nil {
				b.Fatal(err)
			}
		} else if err := db.WaitViewLive(ctx, "race"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnlineViewReadDuringBackfill(b *testing.B) { benchReadDuringBackfill(b, true) }
func BenchmarkOnlineViewReadSteadyState(b *testing.B)    { benchReadDuringBackfill(b, false) }
